package bpred

import (
	"math/rand"
	"testing"
)

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v: %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("bad name: want error")
	}
}

func TestNumericLevelMonotone(t *testing.T) {
	if !(Bimodal.NumericLevel() < TwoLevel.NumericLevel() &&
		TwoLevel.NumericLevel() < Combination.NumericLevel() &&
		Combination.NumericLevel() < Perfect.NumericLevel()) {
		t.Fatal("numeric levels not monotone in predictor strength")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Bimodal, 0); err == nil {
		t.Fatal("zero entries: want error")
	}
	if _, err := New(Bimodal, 1000); err == nil {
		t.Fatal("non-power-of-two: want error")
	}
	if _, err := New(Kind(99), 1024); err == nil {
		t.Fatal("unknown kind: want error")
	}
	p, err := New(Perfect, 0) // table size irrelevant for the oracle
	if err != nil || p.Kind() != Perfect {
		t.Fatalf("perfect: %v %v", p, err)
	}
}

func TestPerfectNeverMispredicts(t *testing.T) {
	p, _ := New(Perfect, 0)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if p.Observe(uint64(r.Intn(64))*4, r.Intn(2) == 0) {
			t.Fatal("perfect predictor mispredicted")
		}
	}
}

func TestBimodalLearnsBiasedBranch(t *testing.T) {
	p, _ := New(Bimodal, 1024)
	miss := 0
	for i := 0; i < 1000; i++ {
		if p.Observe(0x4000, true) {
			miss++
		}
	}
	// Always-taken branch: only the warm-up predictions miss.
	if miss > 3 {
		t.Fatalf("bimodal missed %d times on an always-taken branch", miss)
	}
}

func TestBimodalAlternatingBranchIsHard(t *testing.T) {
	p, _ := New(Bimodal, 1024)
	miss := 0
	n := 1000
	for i := 0; i < n; i++ {
		if p.Observe(0x4000, i%2 == 0) {
			miss++
		}
	}
	// An alternating branch defeats a bimodal predictor (≥ ~50% misses).
	if float64(miss)/float64(n) < 0.4 {
		t.Fatalf("bimodal should struggle on alternation, missed only %d/%d", miss, n)
	}
}

func TestTwoLevelLearnsPattern(t *testing.T) {
	p, _ := New(TwoLevel, 4096)
	miss := 0
	n := 2000
	for i := 0; i < n; i++ {
		if p.Observe(0x4000, i%2 == 0) {
			miss++
		}
	}
	// History-based prediction captures the period-2 pattern after warm-up.
	if float64(miss)/float64(n) > 0.1 {
		t.Fatalf("2-level missed %d/%d on a periodic branch", miss, n)
	}
}

func TestTwoLevelLearnsLongerPattern(t *testing.T) {
	p, _ := New(TwoLevel, 4096)
	pattern := []bool{true, true, false, true, false, false}
	miss := 0
	n := 3000
	for i := 0; i < n; i++ {
		if p.Observe(0x4000, pattern[i%len(pattern)]) {
			miss++
		}
	}
	if float64(miss)/float64(n) > 0.15 {
		t.Fatalf("2-level missed %d/%d on a period-6 pattern", miss, n)
	}
}

func TestCombinationAtLeastAsGoodAsWorstComponent(t *testing.T) {
	// Mixed workload: some biased branches (bimodal-friendly), some
	// periodic branches (2-level-friendly). The tournament should do well
	// on both.
	gen := func() ([]uint64, []bool) {
		r := rand.New(rand.NewSource(7))
		var pcs []uint64
		var outs []bool
		for i := 0; i < 6000; i++ {
			if r.Intn(2) == 0 {
				pcs = append(pcs, 0x1000)
				outs = append(outs, true) // strongly biased
			} else {
				pcs = append(pcs, 0x2000)
				outs = append(outs, i%2 == 0) // periodic
			}
		}
		return pcs, outs
	}
	rate := func(k Kind) float64 {
		p, err := New(k, 4096)
		if err != nil {
			t.Fatal(err)
		}
		pcs, outs := gen()
		r, err := MispredictRate(p, pcs, outs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	comb := rate(Combination)
	bim := rate(Bimodal)
	two := rate(TwoLevel)
	if comb > bim+0.02 || comb > two+0.02 {
		t.Fatalf("combination %.3f worse than components (bimodal %.3f, 2level %.3f)", comb, bim, two)
	}
	if comb > 0.15 {
		t.Fatalf("combination rate %.3f too high on a learnable mix", comb)
	}
}

func TestPredictorOrderingOnRealisticStream(t *testing.T) {
	// A stream of many branches with mixed biases: perfect < combination
	// ≤ min(bimodal, 2level) + slack, and everything ≤ 0.5 + slack.
	gen := func() ([]uint64, []bool) {
		r := rand.New(rand.NewSource(9))
		nBranches := 64
		bias := make([]float64, nBranches)
		period := make([]int, nBranches)
		for b := range bias {
			bias[b] = r.Float64()
			if r.Intn(4) == 0 {
				period[b] = 2 + r.Intn(4)
			}
		}
		var pcs []uint64
		var outs []bool
		for i := 0; i < 20000; i++ {
			b := r.Intn(nBranches)
			pcs = append(pcs, uint64(b)*64)
			if period[b] > 0 {
				outs = append(outs, i%period[b] == 0)
			} else {
				outs = append(outs, r.Float64() < bias[b])
			}
		}
		return pcs, outs
	}
	rates := map[Kind]float64{}
	for _, k := range Kinds() {
		p, err := New(k, 4096)
		if err != nil {
			t.Fatal(err)
		}
		pcs, outs := gen()
		rate, err := MispredictRate(p, pcs, outs)
		if err != nil {
			t.Fatal(err)
		}
		rates[k] = rate
	}
	if rates[Perfect] != 0 {
		t.Fatalf("perfect rate = %v", rates[Perfect])
	}
	for k, r := range rates {
		if k != Perfect && (r <= 0 || r >= 0.6) {
			t.Errorf("%v rate %.3f implausible", k, r)
		}
	}
	if rates[Combination] > rates[Bimodal]+0.02 {
		t.Errorf("combination (%.3f) should not lose to bimodal (%.3f)", rates[Combination], rates[Bimodal])
	}
}

func TestMispredictRateErrors(t *testing.T) {
	p, _ := New(Bimodal, 1024)
	if _, err := MispredictRate(p, []uint64{1}, nil); err == nil {
		t.Fatal("mismatch: want error")
	}
	if _, err := MispredictRate(p, nil, nil); err == nil {
		t.Fatal("empty: want error")
	}
}

func TestDistinctPCsUseDistinctCounters(t *testing.T) {
	p, _ := New(Bimodal, 1024)
	// Train pc A taken; pc B (different index) should stay at its initial
	// weakly-not-taken state.
	for i := 0; i < 100; i++ {
		p.Observe(0x1000, true)
	}
	// First observation of B (a non-aliasing index) with outcome false
	// should NOT mispredict: initial counters predict not-taken.
	if p.Observe(0x1004, false) {
		t.Fatal("training pc A leaked into pc B")
	}
}
