package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// published is the process-wide registry pointer behind the "perfpred"
// expvar. expvar names cannot be unpublished, so the var is registered
// once and indirects through this pointer; re-publishing (tests, repeated
// servers) just swaps the pointer.
var (
	published   atomic.Pointer[Registry]
	publishOnce sync.Once
)

// PublishExpvar exposes the registry's snapshot as the process-global
// expvar "perfpred" (visible on every /debug/vars endpoint). Calling it
// again replaces the published registry; it never panics on duplicate
// registration.
func PublishExpvar(reg *Registry) {
	published.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("perfpred", expvar.Func(func() any {
			r := published.Load()
			if r == nil {
				return MetricsSnapshot{}
			}
			return r.Snapshot()
		}))
	})
}

// MetricsHandler returns an http.Handler serving the observability
// surface rooted at /debug: expvar on /debug/vars (including the
// registry, published as "perfpred"), pprof on /debug/pprof/, and the
// registry alone as compact JSON on /metrics.
func MetricsHandler(reg *Registry) http.Handler {
	PublishExpvar(reg)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, reg.String())
	})
	return mux
}

// StartMetricsServer listens on addr (e.g. "localhost:6060") and serves
// MetricsHandler in a background goroutine. It returns the bound address
// (useful with ":0") and a shutdown func. The server lives until the
// process exits or close is called; serving errors after a successful
// bind are dropped — metrics are best-effort observability, never a
// reason to kill an experiment.
func StartMetricsServer(addr string, reg *Registry) (bound net.Addr, close func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: metrics server: %w", err)
	}
	srv := &http.Server{Handler: MetricsHandler(reg)}
	go srv.Serve(ln) //nolint:errcheck // best-effort background server
	return ln.Addr(), srv.Close, nil
}
