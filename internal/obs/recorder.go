package obs

import (
	"strings"
	"sync"
	"time"

	"perfpred/internal/engine"
)

// Canonical metric names the Recorder maintains in its registry. They are
// exported so dashboards and tests never hard-code strings.
const (
	MetricTasksStarted     = "engine.tasks.started"
	MetricTasksDone        = "engine.tasks.done"
	MetricTasksFailed      = "engine.tasks.failed"
	MetricEpochEvents      = "engine.epoch_events"
	MetricQueueWaitSeconds = "engine.queue_wait_seconds"
	MetricTaskSeconds      = "engine.task_seconds"
	// The kernel.* metrics aggregate KernelTime reports from every model
	// family's numeric kernels (neural SGD epochs, tree growth, batch
	// prediction sweeps) — the per-kernel breakdown in ExecutionStats keys
	// on the event label's first token, so new families show up without
	// recorder changes.
	MetricKernelEvents  = "kernel.events"
	MetricKernelSamples = "kernel.samples"
	MetricKernelSeconds = "kernel.seconds"
)

// ModelStats aggregates every engine task attributed to one model kind.
type ModelStats struct {
	// Tasks counts completed tasks (done + failed).
	Tasks int64 `json:"tasks"`
	// Failures counts failed tasks.
	Failures int64 `json:"failures,omitempty"`
	// Seconds is total task wall-clock time (sum over tasks, not elapsed
	// span — parallel tasks overlap).
	Seconds float64 `json:"seconds"`
	// EpochEvents counts throttled neural epoch-progress events observed.
	EpochEvents int64 `json:"epoch_events,omitempty"`
	// FoldSeconds maps cross-validation fold index to that fold's total
	// training+evaluation time.
	FoldSeconds map[int]float64 `json:"fold_seconds,omitempty"`
}

// KernelStats aggregates the numeric kernels' self-reported timings (SGD
// training epochs, batch prediction sweeps), keyed by kernel name — the
// first token of the KernelTime event label. Samples counts the rows
// streamed through the kernel, so Samples/Seconds is its throughput.
type KernelStats struct {
	// Events counts KernelTime reports (one per SGD run or batch sweep).
	Events int64 `json:"events"`
	// Samples counts rows processed across those reports.
	Samples int64 `json:"samples"`
	// Seconds is total in-kernel wall-clock (parallel kernels overlap).
	Seconds float64 `json:"seconds"`
}

// PhaseStats aggregates tasks by pipeline phase (the first token of the
// task label: "sweep", "estimate", "train", "predict", ...).
type PhaseStats struct {
	Tasks   int64   `json:"tasks"`
	Seconds float64 `json:"seconds"`
}

// ExecutionStats is the Recorder's structured aggregate of one run's
// engine activity — the execution section of a RunReport.
type ExecutionStats struct {
	TasksStarted int64 `json:"tasks_started"`
	TasksDone    int64 `json:"tasks_done"`
	TasksFailed  int64 `json:"tasks_failed,omitempty"`
	EpochEvents  int64 `json:"epoch_events,omitempty"`
	// QueueWait summarizes how long tasks sat queued behind the worker
	// budget before starting.
	QueueWait HistogramStats `json:"queue_wait"`
	// TaskTime summarizes individual task durations.
	TaskTime HistogramStats `json:"task_time"`
	// Phases breaks task counts and time down by pipeline phase.
	Phases map[string]PhaseStats `json:"phases,omitempty"`
	// Models breaks task counts and time down by model kind.
	Models map[string]ModelStats `json:"models,omitempty"`
	// Kernels breaks self-reported kernel time down by kernel name.
	Kernels map[string]KernelStats `json:"kernels,omitempty"`
}

// Counts projects the deterministic part of the stats: everything except
// durations. Two runs of the same seeded workload must produce equal
// Counts regardless of worker count; the concurrency regression test
// pins that.
func (s ExecutionStats) Counts() map[string]int64 {
	out := map[string]int64{
		"tasks_started": s.TasksStarted,
		"tasks_done":    s.TasksDone,
		"tasks_failed":  s.TasksFailed,
		"epoch_events":  s.EpochEvents,
	}
	for name, p := range s.Phases {
		out["phase."+name] = p.Tasks
	}
	for name, m := range s.Models {
		out["model."+name+".tasks"] = m.Tasks
		out["model."+name+".failures"] = m.Failures
		out["model."+name+".epoch_events"] = m.EpochEvents
		out["model."+name+".folds"] = int64(len(m.FoldSeconds))
	}
	for name, k := range s.Kernels {
		out["kernel."+name+".events"] = k.Events
		out["kernel."+name+".samples"] = k.Samples
	}
	return out
}

// Recorder subscribes to the execution engine's event stream and
// aggregates it into metrics and per-model statistics. Attach it by
// passing Recorder.Hook() as (or teed into) a TrainConfig/Options hook.
// All methods are safe for concurrent use; a nil *Recorder is inert
// (Hook returns nil, snapshots are empty).
type Recorder struct {
	reg     *Registry
	started time.Time

	mu      sync.Mutex
	models  map[string]*ModelStats
	phases  map[string]*PhaseStats
	kernels map[string]*KernelStats
}

// NewRecorder returns a Recorder with a fresh registry, stamped with the
// current time (the run's wall-clock origin).
func NewRecorder() *Recorder {
	return &Recorder{
		reg:     NewRegistry(),
		started: time.Now(),
		models:  make(map[string]*ModelStats),
		phases:  make(map[string]*PhaseStats),
		kernels: make(map[string]*KernelStats),
	}
}

// Registry exposes the recorder's metrics registry, e.g. to publish it on
// a metrics server.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Elapsed is the wall-clock time since the recorder was created.
func (r *Recorder) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.started)
}

// phaseOf extracts the pipeline phase from a task label: the prefix up to
// the first space or '[' ("estimate NN-E fold 3" → "estimate",
// "sweep[0:16)" → "sweep").
func phaseOf(label string) string {
	if i := strings.IndexAny(label, " ["); i > 0 {
		return label[:i]
	}
	if label == "" {
		return "other"
	}
	return label
}

// modelOf attributes an event to a model kind: the event's Model field
// when set, otherwise the first token of the label (neural epoch events
// carry labels like "NN-E restart 2 prune 1").
func modelOf(e engine.Event) string {
	if e.Model != "" {
		return e.Model
	}
	label := e.Label
	if i := strings.IndexByte(label, ' '); i > 0 {
		label = label[:i]
	}
	if strings.Contains(label, "-") {
		return label
	}
	return ""
}

// Hook returns the engine hook feeding this recorder. The hook is safe
// for concurrent use from many workers.
func (r *Recorder) Hook() engine.Hook {
	if r == nil {
		return nil
	}
	return r.observe
}

func (r *Recorder) observe(e engine.Event) {
	switch e.Kind {
	case engine.TaskStart:
		r.reg.Counter(MetricTasksStarted).Inc()
		r.reg.Histogram(MetricQueueWaitSeconds).Observe(e.Wait.Seconds())
	case engine.TaskDone, engine.TaskFailed:
		if e.Kind == engine.TaskDone {
			r.reg.Counter(MetricTasksDone).Inc()
		} else {
			r.reg.Counter(MetricTasksFailed).Inc()
		}
		sec := e.Elapsed.Seconds()
		r.reg.Histogram(MetricTaskSeconds).Observe(sec)

		phase := phaseOf(e.Label)
		model := modelOf(e)
		r.mu.Lock()
		p, ok := r.phases[phase]
		if !ok {
			p = &PhaseStats{}
			r.phases[phase] = p
		}
		p.Tasks++
		p.Seconds += sec
		if model != "" {
			m := r.model(model)
			m.Tasks++
			m.Seconds += sec
			if e.Kind == engine.TaskFailed {
				m.Failures++
			}
			if e.Fold >= 0 {
				if m.FoldSeconds == nil {
					m.FoldSeconds = make(map[int]float64)
				}
				m.FoldSeconds[e.Fold] += sec
			}
		}
		r.mu.Unlock()
	case engine.EpochProgress:
		r.reg.Counter(MetricEpochEvents).Inc()
		if model := modelOf(e); model != "" {
			r.mu.Lock()
			r.model(model).EpochEvents++
			r.mu.Unlock()
		}
	case engine.KernelTime:
		r.reg.Counter(MetricKernelEvents).Inc()
		r.reg.Counter(MetricKernelSamples).Add(e.Samples)
		sec := e.Elapsed.Seconds()
		r.reg.Histogram(MetricKernelSeconds).Observe(sec)
		name := phaseOf(e.Label)
		r.mu.Lock()
		k, ok := r.kernels[name]
		if !ok {
			k = &KernelStats{}
			r.kernels[name] = k
		}
		k.Events++
		k.Samples += e.Samples
		k.Seconds += sec
		r.mu.Unlock()
	}
}

// model returns the named model aggregate; r.mu must be held.
func (r *Recorder) model(name string) *ModelStats {
	m, ok := r.models[name]
	if !ok {
		m = &ModelStats{}
		r.models[name] = m
	}
	return m
}

// Execution snapshots the recorder's structured aggregates.
func (r *Recorder) Execution() ExecutionStats {
	if r == nil {
		return ExecutionStats{}
	}
	stats := ExecutionStats{
		TasksStarted: r.reg.Counter(MetricTasksStarted).Value(),
		TasksDone:    r.reg.Counter(MetricTasksDone).Value(),
		TasksFailed:  r.reg.Counter(MetricTasksFailed).Value(),
		EpochEvents:  r.reg.Counter(MetricEpochEvents).Value(),
		QueueWait:    r.reg.Histogram(MetricQueueWaitSeconds).Snapshot(),
		TaskTime:     r.reg.Histogram(MetricTaskSeconds).Snapshot(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.phases) > 0 {
		stats.Phases = make(map[string]PhaseStats, len(r.phases))
		for k, v := range r.phases {
			stats.Phases[k] = *v
		}
	}
	if len(r.kernels) > 0 {
		stats.Kernels = make(map[string]KernelStats, len(r.kernels))
		for k, v := range r.kernels {
			stats.Kernels[k] = *v
		}
	}
	if len(r.models) > 0 {
		stats.Models = make(map[string]ModelStats, len(r.models))
		for k, v := range r.models {
			m := *v
			if v.FoldSeconds != nil {
				m.FoldSeconds = make(map[int]float64, len(v.FoldSeconds))
				for fold, sec := range v.FoldSeconds {
					m.FoldSeconds[fold] = sec
				}
			}
			stats.Models[k] = m
		}
	}
	return stats
}

// Metrics snapshots the recorder's raw metrics registry.
func (r *Recorder) Metrics() MetricsSnapshot {
	if r == nil {
		return MetricsSnapshot{}
	}
	return r.reg.Snapshot()
}
