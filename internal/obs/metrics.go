// Package obs is the framework's observability layer: a lightweight
// stdlib-only metrics registry (counters, gauges, timing histograms with
// exact p50/p95/p99), a [Recorder] that aggregates the execution engine's
// Hook stream into per-model/per-fold statistics, and a JSON-serializable
// [RunReport] that captures everything a run produced — model errors, the
// selection decision, seeds, worker count and a wall-clock breakdown — so
// experiments leave a machine-readable record instead of scrolled-away
// console text.
//
// The pipeline is: engine.Hook → Recorder → RunReport. The Recorder is a
// plain hook consumer (attach it with Recorder.Hook, tee it with
// engine.Tee next to a progress renderer); the registry it maintains can
// be published over HTTP with [StartMetricsServer] (expvar + pprof).
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can move in either direction (queue
// depth, worker count). The zero value is ready to use; all methods are
// safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates float64 observations (typically seconds) and
// reports exact quantiles. It keeps every sample — runs observe thousands
// of tasks, not millions, so exactness is cheaper than a sketch and makes
// the regression tests deterministic. The zero value is ready to use; all
// methods are safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int64(len(h.samples))
}

// HistogramStats is an immutable summary of a histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram's samples. An empty histogram yields
// the zero HistogramStats.
func (h *Histogram) Snapshot() HistogramStats {
	h.mu.Lock()
	sorted := append([]float64(nil), h.samples...)
	sum := h.sum
	h.mu.Unlock()
	if len(sorted) == 0 {
		return HistogramStats{}
	}
	sort.Float64s(sorted)
	return HistogramStats{
		Count: int64(len(sorted)),
		Sum:   sum,
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
		P50:   quantileSorted(sorted, 0.50),
		P95:   quantileSorted(sorted, 0.95),
		P99:   quantileSorted(sorted, 0.99),
	}
}

// quantileSorted returns the q-quantile of an ascending sample by linear
// interpolation between closest ranks (the same convention as
// stat.Quantile, restated here to keep obs dependency-free below engine).
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Registry is a named collection of metrics. Metric accessors are
// get-or-create and safe for concurrent use, so instrumentation sites
// never need registration ceremony. Registry implements expvar.Var (its
// String method renders the snapshot as JSON), so one Publish call exposes
// every metric on /debug/vars.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time copy of every metric in a registry,
// in JSON-friendly form.
type MetricsSnapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	snap := MetricsSnapshot{}
	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			snap.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges))
		for k, v := range gauges {
			snap.Gauges[k] = v.Value()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramStats, len(hists))
		for k, v := range hists {
			snap.Histograms[k] = v.Snapshot()
		}
	}
	return snap
}

// String renders the snapshot as JSON, satisfying expvar.Var.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}
