package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var g Gauge
	if g.Value() != 0 {
		t.Errorf("zero gauge = %v, want 0", g.Value())
	}
	g.Set(3.25)
	if g.Value() != 3.25 {
		t.Errorf("gauge = %v, want 3.25", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Errorf("gauge = %v, want -1", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Errorf("empty histogram snapshot = %+v", s)
	}
	// 1..100: exact quantiles by linear interpolation between closest
	// ranks: p50 = 50.5, p95 = 95.05, p99 = 99.01.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("count/min/max = %d/%v/%v", s.Count, s.Min, s.Max)
	}
	if s.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", s.Mean)
	}
	for _, tc := range []struct{ got, want float64 }{
		{s.P50, 50.5}, {s.P95, 95.05}, {s.P99, 99.01},
	} {
		if math.Abs(tc.got-tc.want) > 1e-9 {
			t.Errorf("quantile = %v, want %v", tc.got, tc.want)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(7)
	s := h.Snapshot()
	if s.P50 != 7 || s.P95 != 7 || s.P99 != 7 || s.Mean != 7 {
		t.Errorf("single-sample snapshot = %+v", s)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram not idempotent")
	}
	r.Counter("a").Add(3)
	r.Gauge("g").Set(1.5)
	r.Histogram("h").Observe(2)
	snap := r.Snapshot()
	if snap.Counters["a"] != 3 || snap.Gauges["g"] != 1.5 || snap.Histograms["h"].Count != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	// String must be valid JSON (it backs the expvar and /metrics views).
	var decoded MetricsSnapshot
	if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if decoded.Counters["a"] != 3 {
		t.Errorf("decoded counter = %d, want 3", decoded.Counters["a"])
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(float64(i))
				r.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
