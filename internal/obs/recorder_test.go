package obs

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"perfpred/internal/engine"
)

func TestPhaseOfModelOf(t *testing.T) {
	for _, tc := range []struct{ label, phase string }{
		{"estimate NN-E fold 3", "estimate"},
		{"train LR-B", "train"},
		{"predict NN-Q[0:256)", "predict"},
		{"sweep[0:16)", "sweep"},
		{"solo", "solo"},
		{"", "other"},
	} {
		if got := phaseOf(tc.label); got != tc.phase {
			t.Errorf("phaseOf(%q) = %q, want %q", tc.label, got, tc.phase)
		}
	}
	for _, tc := range []struct {
		e     engine.Event
		model string
	}{
		{engine.Event{Model: "NN-E", Label: "estimate NN-E fold 3"}, "NN-E"},
		{engine.Event{Label: "NN-Q"}, "NN-Q"},
		{engine.Event{Label: "NN-E restart 2 prune 1"}, "NN-E"},
		{engine.Event{Label: "sweep[0:16)"}, ""},
		{engine.Event{Label: "plain label"}, ""},
	} {
		if got := modelOf(tc.e); got != tc.model {
			t.Errorf("modelOf(%+v) = %q, want %q", tc.e, got, tc.model)
		}
	}
}

func TestRecorderAggregation(t *testing.T) {
	rec := NewRecorder()
	hook := rec.Hook()
	// Synthesize a small deterministic event stream by hand.
	hook(engine.Event{Kind: engine.TaskStart, Label: "train NN-Q", Model: "NN-Q", Fold: -1, Wait: time.Millisecond})
	hook(engine.Event{Kind: engine.TaskDone, Label: "train NN-Q", Model: "NN-Q", Fold: -1, Elapsed: 2 * time.Second})
	hook(engine.Event{Kind: engine.TaskStart, Label: "estimate NN-Q fold 0", Model: "NN-Q", Fold: 0})
	hook(engine.Event{Kind: engine.TaskFailed, Label: "estimate NN-Q fold 0", Model: "NN-Q", Fold: 0, Elapsed: time.Second, Err: errors.New("boom")})
	hook(engine.Event{Kind: engine.EpochProgress, Label: "NN-Q", Epoch: 8, Epochs: 64})

	exec := rec.Execution()
	if exec.TasksStarted != 2 || exec.TasksDone != 1 || exec.TasksFailed != 1 || exec.EpochEvents != 1 {
		t.Errorf("counts = %+v", exec)
	}
	m, ok := exec.Models["NN-Q"]
	if !ok {
		t.Fatal("no NN-Q aggregate")
	}
	if m.Tasks != 2 || m.Failures != 1 || m.EpochEvents != 1 {
		t.Errorf("NN-Q = %+v", m)
	}
	if m.Seconds != 3 {
		t.Errorf("NN-Q seconds = %v, want 3", m.Seconds)
	}
	if got := m.FoldSeconds[0]; got != 1 {
		t.Errorf("fold 0 seconds = %v, want 1", got)
	}
	if exec.Phases["train"].Tasks != 1 || exec.Phases["estimate"].Tasks != 1 {
		t.Errorf("phases = %+v", exec.Phases)
	}
	if exec.QueueWait.Count != 2 || exec.QueueWait.Max < 0.001 {
		t.Errorf("queue wait = %+v", exec.QueueWait)
	}
}

func TestNilRecorderInert(t *testing.T) {
	var rec *Recorder
	if rec.Hook() != nil {
		t.Error("nil recorder Hook should be nil")
	}
	if rec.Registry() != nil {
		t.Error("nil recorder Registry should be nil")
	}
	if got := rec.Execution(); !reflect.DeepEqual(got, ExecutionStats{}) {
		t.Errorf("nil recorder Execution = %+v", got)
	}
}

// syntheticRun schedules a deterministic task graph shaped like a
// workflow run — 4 "models" × (5 folds + 1 train) plus a chunked predict
// phase and throttled epoch events — on a pool of the given width, with
// the recorder attached.
func syntheticRun(t *testing.T, workers int) *Recorder {
	t.Helper()
	rec := NewRecorder()
	models := []string{"LR-E", "LR-B", "NN-Q", "NN-S"}
	var tasks []engine.Task
	for _, m := range models {
		m := m
		for fold := 0; fold < 5; fold++ {
			tasks = append(tasks, engine.Task{
				Label: fmt.Sprintf("estimate %s fold %d", m, fold),
				Model: m,
				Fold:  fold,
				Run:   func(context.Context) error { return nil },
			})
		}
		tasks = append(tasks, engine.Task{
			Label: "train " + m,
			Model: m,
			Fold:  -1,
			Run: func(ctx context.Context) error {
				// Cooperating task body: emit deterministic epoch events.
				for epoch := 0; epoch < 3; epoch++ {
					rec.Hook().Emit(engine.Event{Kind: engine.EpochProgress, Label: m, Fold: -1, Epoch: epoch, Epochs: 3})
				}
				return nil
			},
		})
	}
	opts := engine.Options{Workers: workers, Hook: rec.Hook()}
	if err := engine.Run(context.Background(), opts, tasks...); err != nil {
		t.Fatal(err)
	}
	if err := engine.Map(context.Background(), opts, 1000, 256, "predict NN-Q", func(ctx context.Context, lo, hi int) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestRecorderCountsWorkerInvariant is the concurrency regression test:
// the deterministic projection of the aggregates (task counts per model,
// folds, epoch events, phases) must be identical whether the engine ran
// 1-wide or 16-wide. Run under -race (make race) this also proves the
// Recorder's hook path is data-race free at full contention.
func TestRecorderCountsWorkerInvariant(t *testing.T) {
	serial := syntheticRun(t, 1).Execution()
	wide := syntheticRun(t, 16).Execution()
	if !reflect.DeepEqual(serial.Counts(), wide.Counts()) {
		t.Errorf("aggregate counts differ across worker counts:\n 1 worker: %v\n16 workers: %v",
			serial.Counts(), wide.Counts())
	}
	// Spot-check the absolute numbers: 4 models × 6 tasks + 4 predict
	// chunks = 28 tasks, all done; 4 models × 3 epoch events.
	if serial.TasksStarted != 28 || serial.TasksDone != 28 || serial.TasksFailed != 0 {
		t.Errorf("task counts = %d/%d/%d, want 28/28/0", serial.TasksStarted, serial.TasksDone, serial.TasksFailed)
	}
	if serial.EpochEvents != 12 {
		t.Errorf("epoch events = %d, want 12", serial.EpochEvents)
	}
	for _, m := range []string{"LR-E", "LR-B", "NN-Q", "NN-S"} {
		if got := serial.Models[m].Tasks; got != 6 {
			t.Errorf("%s tasks = %d, want 6", m, got)
		}
		if got := len(serial.Models[m].FoldSeconds); got != 5 {
			t.Errorf("%s folds = %d, want 5", m, got)
		}
	}
	if got := serial.Phases["predict"].Tasks; got != 4 {
		t.Errorf("predict tasks = %d, want 4", got)
	}
}

func TestRecorderKernelStats(t *testing.T) {
	rec := NewRecorder()
	hook := rec.Hook()
	hook(engine.Event{Kind: engine.KernelTime, Label: "sgd NN-Q", Fold: -1, Samples: 6400, Elapsed: 2 * time.Second})
	hook(engine.Event{Kind: engine.KernelTime, Label: "sgd NN-Q", Fold: -1, Samples: 1600, Elapsed: time.Second})
	hook(engine.Event{Kind: engine.KernelTime, Label: "predict NN-Q", Model: "NN-Q", Fold: -1, Samples: 256, Elapsed: time.Second / 2})

	exec := rec.Execution()
	sgd, ok := exec.Kernels["sgd"]
	if !ok {
		t.Fatalf("no sgd kernel aggregate: %+v", exec.Kernels)
	}
	if sgd.Events != 2 || sgd.Samples != 8000 || sgd.Seconds != 3 {
		t.Errorf("sgd = %+v", sgd)
	}
	pred, ok := exec.Kernels["predict"]
	if !ok {
		t.Fatal("no predict kernel aggregate")
	}
	if pred.Events != 1 || pred.Samples != 256 || pred.Seconds != 0.5 {
		t.Errorf("predict = %+v", pred)
	}

	counts := exec.Counts()
	if counts["kernel.sgd.events"] != 2 || counts["kernel.sgd.samples"] != 8000 {
		t.Errorf("counts = %+v", counts)
	}
	if counts["kernel.predict.samples"] != 256 {
		t.Errorf("counts = %+v", counts)
	}

	if got := rec.Registry().Counter(MetricKernelSamples).Value(); got != 8256 {
		t.Errorf("kernel samples counter = %d, want 8256", got)
	}
}
