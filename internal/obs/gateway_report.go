package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Canonical gateway metric names. The replicated-serving front tier
// (internal/gateway, cmd/perfpredgw) records into these entries, and
// BuildGatewayReport reads the same names back out of a snapshot — the
// same live-metrics/final-report consistency contract the serving daemon
// keeps via the MetricServe* names.
const (
	// MetricGatewayRequests counts /v1/predict requests the gateway
	// accepted for routing (shed and drained requests included).
	MetricGatewayRequests = "gateway.requests"
	// MetricGatewayHedges counts hedged second attempts launched for
	// tail latency.
	MetricGatewayHedges = "gateway.hedges"
	// MetricGatewayHedgeWins counts requests whose terminal response came
	// from the hedge attempt rather than the primary.
	MetricGatewayHedgeWins = "gateway.hedge_wins"
	// MetricGatewayRetries counts attempts relaunched on another replica
	// after a transport failure (a killed or unreachable replica).
	MetricGatewayRetries = "gateway.retries"
	// MetricGatewayShed counts requests the gateway rejected with its own
	// 429 because every routable replica was at its in-flight cap.
	// (Replica-side sheds pass through and are counted by the replica.)
	MetricGatewayShed = "gateway.shed"
	// MetricGatewayErrors counts gateway-originated terminal errors: no
	// healthy replica (503), every attempt failed in transport (502),
	// or the request deadline expired with no response in hand (504).
	MetricGatewayErrors = "gateway.errors"
	// MetricGatewayEjects counts replica transitions healthy → ejected.
	MetricGatewayEjects = "gateway.ejects"
	// MetricGatewayReadmits counts replica transitions ejected → healthy.
	MetricGatewayReadmits = "gateway.readmits"
	// MetricGatewayProbes counts active health probes sent.
	MetricGatewayProbes = "gateway.probes"
	// MetricGatewayProbeFailures counts probes that failed (transport
	// error, non-200, or an injected gateway.health_probe fault).
	MetricGatewayProbeFailures = "gateway.probe_failures"
	// MetricGatewayFaults counts injected faults that fired on the
	// gateway path (route, hedge, health probe) — 0 outside chaos runs.
	MetricGatewayFaults = "gateway.faults_injected"
	// MetricGatewayLatency observes end-to-end gateway predict seconds.
	MetricGatewayLatency = "gateway.latency_seconds"
	// MetricGatewayUpstream observes per-attempt upstream seconds
	// (primary, hedge and retry attempts each observe once).
	MetricGatewayUpstream = "gateway.upstream_seconds"
)

// GatewayReportVersion is the current GatewayReport schema version.
const GatewayReportVersion = 1

// ReplicaReport is one replica's lifetime as the gateway saw it.
type ReplicaReport struct {
	// Addr is the replica's upstream address.
	Addr string `json:"addr"`
	// Healthy is the replica's health state at snapshot time.
	Healthy bool `json:"healthy"`
	// Requests counts attempts dispatched to this replica.
	Requests int64 `json:"requests"`
	// TransportErrors counts attempts that failed below HTTP (refused,
	// reset, torn body) — the signal that drives passive ejection.
	TransportErrors int64 `json:"transport_errors"`
	// Ejects and Readmits count this replica's health transitions.
	Ejects   int64 `json:"ejects"`
	Readmits int64 `json:"readmits"`
	// Probes and ProbeFailures count active health checks.
	Probes        int64 `json:"probes"`
	ProbeFailures int64 `json:"probe_failures"`
}

// GatewayMeta identifies one gateway lifetime for its report.
type GatewayMeta struct {
	// Addr is the gateway's bound listen address.
	Addr string
	// Replicas is the per-replica census at snapshot time.
	Replicas []ReplicaReport
	// Uptime is how long the gateway has been serving.
	Uptime time.Duration
}

// GatewayReport is the machine-readable record of one gateway lifetime —
// the front-tier analogue of ServeReport: which replicas it fronted and
// their health history, how much traffic it routed, how often it hedged,
// retried, shed and erred, and how fast. The gateway exposes it live on
// /gw/report and cmd/perfpredgw writes it at SIGTERM drain behind
// -report.
type GatewayReport struct {
	// Version is the schema version (GatewayReportVersion).
	Version int `json:"version"`
	// Addr is the gateway's bound listen address.
	Addr string `json:"addr,omitempty"`
	// UptimeSeconds is the gateway's serving time at snapshot.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Replicas is the per-replica census, in configuration order.
	Replicas []ReplicaReport `json:"replicas"`

	// Requests through Errors are the lifetime counters (see the
	// MetricGateway* names).
	Requests  int64 `json:"requests"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	Retries   int64 `json:"retries"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`
	Ejects    int64 `json:"ejects"`
	Readmits  int64 `json:"readmits"`
	// FaultsInjected counts injected gateway-path faults (0 outside
	// chaos runs).
	FaultsInjected int64 `json:"faults_injected"`

	// LatencySeconds and UpstreamSeconds summarize the timing histograms.
	LatencySeconds  HistogramStats `json:"latency_seconds"`
	UpstreamSeconds HistogramStats `json:"upstream_seconds"`

	// Metrics is the full raw snapshot the summary fields were read from.
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
}

// BuildGatewayReport snapshots the registry into a GatewayReport.
func BuildGatewayReport(meta GatewayMeta, reg *Registry) *GatewayReport {
	r := &GatewayReport{
		Version:       GatewayReportVersion,
		Addr:          meta.Addr,
		UptimeSeconds: meta.Uptime.Seconds(),
		Replicas:      append([]ReplicaReport(nil), meta.Replicas...),
	}
	if reg != nil {
		snap := reg.Snapshot()
		r.Requests = snap.Counters[MetricGatewayRequests]
		r.Hedges = snap.Counters[MetricGatewayHedges]
		r.HedgeWins = snap.Counters[MetricGatewayHedgeWins]
		r.Retries = snap.Counters[MetricGatewayRetries]
		r.Shed = snap.Counters[MetricGatewayShed]
		r.Errors = snap.Counters[MetricGatewayErrors]
		r.Ejects = snap.Counters[MetricGatewayEjects]
		r.Readmits = snap.Counters[MetricGatewayReadmits]
		r.FaultsInjected = snap.Counters[MetricGatewayFaults]
		r.LatencySeconds = snap.Histograms[MetricGatewayLatency]
		r.UpstreamSeconds = snap.Histograms[MetricGatewayUpstream]
		r.Metrics = &snap
	}
	return r
}

// Validate checks structural invariants: supported version, at least one
// replica, non-negative counters, internally consistent sub-counts
// (hedge wins ≤ hedges, transition counts match the per-replica census)
// and finite histogram numbers.
func (r *GatewayReport) Validate() error {
	if r == nil {
		return errors.New("obs: nil gateway report")
	}
	if r.Version != GatewayReportVersion {
		return fmt.Errorf("obs: unsupported gateway report version %d (want %d)", r.Version, GatewayReportVersion)
	}
	if len(r.Replicas) == 0 {
		return errors.New("obs: gateway report has no replicas")
	}
	for name, v := range map[string]int64{
		"requests": r.Requests, "hedges": r.Hedges, "hedge_wins": r.HedgeWins,
		"retries": r.Retries, "shed": r.Shed, "errors": r.Errors,
		"ejects": r.Ejects, "readmits": r.Readmits, "faults_injected": r.FaultsInjected,
	} {
		if v < 0 {
			return fmt.Errorf("obs: gateway report %s is negative", name)
		}
	}
	if r.HedgeWins > r.Hedges {
		return fmt.Errorf("obs: gateway report hedge_wins %d exceeds hedges %d", r.HedgeWins, r.Hedges)
	}
	var ejects, readmits int64
	for i, rep := range r.Replicas {
		if rep.Addr == "" {
			return fmt.Errorf("obs: gateway report replica %d has no address", i)
		}
		for name, v := range map[string]int64{
			"requests": rep.Requests, "transport_errors": rep.TransportErrors,
			"ejects": rep.Ejects, "readmits": rep.Readmits,
			"probes": rep.Probes, "probe_failures": rep.ProbeFailures,
		} {
			if v < 0 {
				return fmt.Errorf("obs: gateway report replica %s %s is negative", rep.Addr, name)
			}
		}
		if rep.ProbeFailures > rep.Probes {
			return fmt.Errorf("obs: gateway report replica %s probe_failures %d exceeds probes %d",
				rep.Addr, rep.ProbeFailures, rep.Probes)
		}
		if rep.Readmits > rep.Ejects {
			return fmt.Errorf("obs: gateway report replica %s readmits %d exceeds ejects %d",
				rep.Addr, rep.Readmits, rep.Ejects)
		}
		ejects += rep.Ejects
		readmits += rep.Readmits
	}
	if ejects != r.Ejects || readmits != r.Readmits {
		return fmt.Errorf("obs: gateway report transitions (%d ejects, %d readmits) disagree with replica census (%d, %d)",
			r.Ejects, r.Readmits, ejects, readmits)
	}
	if !isFinite(r.UptimeSeconds) || r.UptimeSeconds < 0 {
		return errors.New("obs: gateway report uptime is invalid")
	}
	for name, h := range map[string]HistogramStats{
		"latency_seconds": r.LatencySeconds, "upstream_seconds": r.UpstreamSeconds,
	} {
		for _, v := range []float64{h.Sum, h.Min, h.Max, h.Mean, h.P50, h.P95, h.P99} {
			if !isFinite(v) {
				return fmt.Errorf("obs: gateway report histogram %s has non-finite value", name)
			}
		}
		if h.Count < 0 {
			return fmt.Errorf("obs: gateway report histogram %s has negative count", name)
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *GatewayReport) WriteJSON(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path as indented JSON.
func (r *GatewayReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: writing gateway report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadGatewayReport parses and validates a gateway report.
func ReadGatewayReport(r io.Reader) (*GatewayReport, error) {
	var rep GatewayReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: decoding gateway report: %w", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// ReadGatewayReportFile reads a gateway report from a JSON file.
func ReadGatewayReportFile(path string) (*GatewayReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading gateway report: %w", err)
	}
	defer f.Close()
	return ReadGatewayReport(f)
}
