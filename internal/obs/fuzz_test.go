package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// FuzzReportRoundTrip feeds arbitrary bytes to the report reader. Any
// input the reader accepts must survive a full encode/decode cycle
// unchanged — the regression-test harness depends on report files being
// a faithful, stable serialization. Seed inputs live both here and in
// testdata/fuzz/FuzzReportRoundTrip (the checked-in corpus).
func FuzzReportRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"command":"chrono","seed":7,"workers":0}`))
	f.Add([]byte(`{"version":1,"command":"dse","models":[{"kind":"NN-E","true_mape":1e308}]}`))
	f.Add([]byte(`{"version":2,"command":"dse"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReadReport(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only requirement is no panic
		}
		var out bytes.Buffer
		if err := rep.WriteJSON(&out); err != nil {
			t.Fatalf("accepted report failed to re-encode: %v\ninput: %q", err, data)
		}
		again, err := ReadReport(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded report rejected: %v\nencoded: %s", err, out.String())
		}
		if !reflect.DeepEqual(rep, again) {
			t.Fatalf("round trip not stable:\nfirst  %+v\nsecond %+v", rep, again)
		}
	})
}

// FuzzMetricsSnapshotJSON guards the other JSON surface: the registry
// snapshot that backs expvar and /metrics. Arbitrary snapshots must
// decode without panicking, and decodable ones must re-encode.
func FuzzMetricsSnapshotJSON(f *testing.F) {
	reg := NewRegistry()
	reg.Counter("engine.tasks.done").Add(3)
	reg.Histogram("engine.task_seconds").Observe(0.5)
	f.Add(reg.String())
	f.Add(`{"counters":{"a":1},"histograms":{"h":{"count":2,"sum":3,"p50":1.5}}}`)
	f.Add(`{"gauges":{"g":-0.5}}`)
	f.Add(`[]`)

	f.Fuzz(func(t *testing.T, data string) {
		var snap MetricsSnapshot
		if err := json.Unmarshal([]byte(data), &snap); err != nil {
			return
		}
		if _, err := json.Marshal(snap); err != nil {
			// NaN/Inf cannot arrive via JSON, so re-encoding must work.
			if !strings.Contains(err.Error(), "unsupported value") {
				t.Fatalf("snapshot failed to re-encode: %v", err)
			}
		}
	})
}
