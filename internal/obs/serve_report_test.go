package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestBuildServeReport(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricServeRequests).Add(10)
	reg.Counter(MetricServePredictions).Add(25)
	reg.Counter(MetricServeBatches).Add(4)
	reg.Counter(MetricServeShed).Add(2)
	reg.Counter(MetricServeErrors).Inc()
	reg.Counter(MetricServeReloads).Inc()
	reg.Counter(MetricServeFaults).Add(3)
	for _, v := range []float64{1, 8, 16} {
		reg.Histogram(MetricServeBatchSize).Observe(v)
	}
	reg.Histogram(MetricServeLatency).Observe(0.002)
	reg.Gauge(MetricServeQueueDepth).Set(3)

	meta := ServeMeta{
		Addr:       "127.0.0.1:8080",
		ModelsDir:  "models",
		Models:     []string{"a", "b"},
		Generation: 2,
		Uptime:     3 * time.Second,
	}
	rep := BuildServeReport(meta, reg)
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 10 || rep.Predictions != 25 || rep.Batches != 4 || rep.Shed != 2 || rep.Errors != 1 || rep.Reloads != 1 {
		t.Fatalf("counters wrong: %+v", rep)
	}
	if rep.FaultsInjected != 3 {
		t.Fatalf("faults counter wrong: %+v", rep)
	}
	if rep.BatchSize.Count != 3 || rep.BatchSize.Max != 16 {
		t.Fatalf("batch-size histogram wrong: %+v", rep.BatchSize)
	}
	if rep.UptimeSeconds != 3 || rep.Generation != 2 || len(rep.Models) != 2 {
		t.Fatalf("meta wrong: %+v", rep)
	}
	if rep.Metrics == nil || rep.Metrics.Gauges[MetricServeQueueDepth] != 3 {
		t.Fatal("raw snapshot missing or wrong")
	}

	// Round trip through JSON.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadServeReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Requests != rep.Requests || back.LatencySeconds.Count != 1 || back.FaultsInjected != 3 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestServeReportValidateRejects(t *testing.T) {
	rep := BuildServeReport(ServeMeta{}, nil)
	if err := rep.Validate(); err != nil {
		t.Fatalf("empty report invalid: %v", err)
	}
	rep.Version = 99
	if err := rep.Validate(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: %v", err)
	}
	rep = BuildServeReport(ServeMeta{}, nil)
	rep.Shed = -1
	if err := rep.Validate(); err == nil {
		t.Fatal("negative counter accepted")
	}
	if _, err := ReadServeReport(strings.NewReader("{nope")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
