package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// ReportVersion is the current RunReport schema version. Readers reject
// other versions rather than misinterpret fields.
const ReportVersion = 1

// ModelResult is one model's scored outcome in a run — the error numbers
// the paper's figures are made of, in full float64 precision (console
// output rounds to two decimals; the report does not).
type ModelResult struct {
	// Kind is the paper's model label (e.g. "LR-B", "NN-E").
	Kind string `json:"kind"`
	// EstimateMean is the mean cross-validated MAPE over the folds (§3.3).
	EstimateMean float64 `json:"estimate_mean"`
	// EstimateMax is the worst fold's MAPE — the paper's selection
	// criterion.
	EstimateMax float64 `json:"estimate_max"`
	// EstimatePerFold lists each fold's MAPE.
	EstimatePerFold []float64 `json:"estimate_per_fold,omitempty"`
	// TrueMAPE is the measured error on the evaluation data.
	TrueMAPE float64 `json:"true_mape"`
	// StdAPE is the standard deviation of the absolute percentage errors.
	StdAPE float64 `json:"std_ape"`
}

// CommitteeError is one committee member's measured error at one
// active-learning round — a learning-curve point.
type CommitteeError struct {
	// Kind is the member's model label (e.g. "NN-Q", "TREE-B").
	Kind string `json:"kind"`
	// TrueMAPE is the member's measured full-space error that round.
	TrueMAPE float64 `json:"true_mape"`
}

// ActiveRound is one acquisition round of an active-learning run.
type ActiveRound struct {
	// Round is the 1-based round index.
	Round int `json:"round"`
	// LabeledBefore and PoolBefore are the set sizes entering the round.
	LabeledBefore int `json:"labeled_before"`
	PoolBefore    int `json:"pool_before"`
	// Acquired is how many design points the round moved pool → labeled.
	Acquired int `json:"acquired"`
	// TrainSeconds and AcquireSeconds break down the round's wall clock
	// into committee training and acquisition scoring.
	TrainSeconds   float64 `json:"train_seconds"`
	AcquireSeconds float64 `json:"acquire_seconds"`
	// Committee is the round's trained members' error trajectory.
	Committee []CommitteeError `json:"committee,omitempty"`
}

// ActiveStats summarizes an active-learning DSE run: the acquisition
// strategy, the budget split (initial random sample vs. acquired), and
// the per-round learning-curve trajectory.
type ActiveStats struct {
	// Strategy names the acquisition policy ("committee", "diversity",
	// "ei", or any future registered name).
	Strategy string `json:"strategy"`
	// InitialSize is the random seed sample, FinalSize the total labeled
	// budget after all rounds, PoolSize the remaining unlabeled points.
	InitialSize int `json:"initial_size"`
	FinalSize   int `json:"final_size"`
	PoolSize    int `json:"pool_size"`
	// Rounds holds one entry per executed acquisition round.
	Rounds []ActiveRound `json:"rounds,omitempty"`
}

// Validate checks the section's structural invariants.
func (a *ActiveStats) Validate() error {
	if a.Strategy == "" {
		return errors.New("obs: active stats have no strategy")
	}
	if a.InitialSize < 0 || a.FinalSize < a.InitialSize || a.PoolSize < 0 {
		return errors.New("obs: active stats sizes inconsistent")
	}
	for _, r := range a.Rounds {
		if !isFinite(r.TrainSeconds) || !isFinite(r.AcquireSeconds) {
			return fmt.Errorf("obs: active round %d has non-finite timing", r.Round)
		}
		for _, c := range r.Committee {
			if c.Kind == "" {
				return fmt.Errorf("obs: active round %d committee entry has no kind", r.Round)
			}
			if !isFinite(c.TrueMAPE) {
				return fmt.Errorf("obs: active round %d committee %s has non-finite error", r.Round, c.Kind)
			}
		}
	}
	return nil
}

// WallClock is a coarse wall-clock breakdown of a run. Fields are
// seconds; phases absent from a run stay zero.
type WallClock struct {
	// TotalSeconds is the run's end-to-end wall-clock time.
	TotalSeconds float64 `json:"total_seconds"`
	// SimulateSeconds is the design-space simulation (ground-truth) time.
	SimulateSeconds float64 `json:"simulate_seconds,omitempty"`
	// ModelSeconds is the train/estimate/evaluate time.
	ModelSeconds float64 `json:"model_seconds,omitempty"`
}

// RunReport is the machine-readable record of one experiment run: what
// was run (command, target, seeds, workers), what came out (per-model
// errors, the selection decision), and how it executed (wall-clock
// breakdown, engine statistics, raw metrics). It is the payload behind
// the cmds' -report flags and the fixture format of the statistical
// regression tests.
type RunReport struct {
	// Version is the schema version (ReportVersion).
	Version int `json:"version"`
	// Command names the producing tool ("dse", "chrono", "experiments").
	Command string `json:"command"`
	// Target is the benchmark (sampled DSE) or system family (chrono).
	Target string `json:"target,omitempty"`
	// Seed is the run's master seed; with the command and target it
	// reproduces the run exactly.
	Seed int64 `json:"seed"`
	// Workers is the configured worker bound (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// EpochScale is the neural epoch-budget scale (0 = 1.0).
	EpochScale float64 `json:"epoch_scale,omitempty"`

	// Fraction and SampleSize describe sampled-DSE runs: the sampling
	// rate and the resulting number of simulated design points.
	Fraction   float64 `json:"fraction,omitempty"`
	SampleSize int     `json:"sample_size,omitempty"`
	// SpaceSize is the evaluated space (sampled DSE) size.
	SpaceSize int `json:"space_size,omitempty"`
	// TrainSize and FutureSize describe chronological runs.
	TrainSize  int `json:"train_size,omitempty"`
	FutureSize int `json:"future_size,omitempty"`

	// Models holds one entry per requested model kind, in request order.
	Models []ModelResult `json:"models,omitempty"`
	// Selected is the model the Select rule picks on estimated error
	// alone, and SelectedTrueMAPE its measured error.
	Selected         string  `json:"selected,omitempty"`
	SelectedTrueMAPE float64 `json:"selected_true_mape,omitempty"`
	// Best is the model with the lowest measured error (chronological
	// runs report it; sampled DSE leaves it empty).
	Best         string  `json:"best,omitempty"`
	BestTrueMAPE float64 `json:"best_true_mape,omitempty"`

	// Active is the acquisition trajectory of an active-learning DSE run
	// (absent for one-shot random sampling).
	Active *ActiveStats `json:"active,omitempty"`

	// WallClock is the run's coarse timing breakdown.
	WallClock WallClock `json:"wall_clock"`
	// Execution is the engine-level statistics aggregated by a Recorder,
	// when one was attached.
	Execution *ExecutionStats `json:"execution,omitempty"`
	// Metrics is the raw metrics snapshot, when a Recorder was attached.
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
}

// Validate checks structural invariants: supported version, a command,
// finite numbers everywhere (JSON cannot carry NaN/Inf), and per-model
// consistency. It is the gate both the file reader and the fuzz
// round-trip harness rely on.
func (r *RunReport) Validate() error {
	if r == nil {
		return errors.New("obs: nil report")
	}
	if r.Version != ReportVersion {
		return fmt.Errorf("obs: unsupported report version %d (want %d)", r.Version, ReportVersion)
	}
	if r.Command == "" {
		return errors.New("obs: report has no command")
	}
	for i, m := range r.Models {
		if m.Kind == "" {
			return fmt.Errorf("obs: model %d has no kind", i)
		}
		for _, v := range append([]float64{m.EstimateMean, m.EstimateMax, m.TrueMAPE, m.StdAPE}, m.EstimatePerFold...) {
			if !isFinite(v) {
				return fmt.Errorf("obs: model %s has non-finite error value", m.Kind)
			}
		}
	}
	for _, v := range []float64{
		r.EpochScale, r.Fraction, r.SelectedTrueMAPE, r.BestTrueMAPE,
		r.WallClock.TotalSeconds, r.WallClock.SimulateSeconds, r.WallClock.ModelSeconds,
	} {
		if !isFinite(v) {
			return errors.New("obs: report has non-finite numeric field")
		}
	}
	if r.Active != nil {
		if err := r.Active.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// FindModel returns the named model's result, or nil when absent.
func (r *RunReport) FindModel(kind string) *ModelResult {
	for i := range r.Models {
		if r.Models[i].Kind == kind {
			return &r.Models[i]
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path as indented JSON.
func (r *RunReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: writing report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses and validates a report.
func ReadReport(r io.Reader) (*RunReport, error) {
	var rep RunReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: decoding report: %w", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// ReadReportFile reads a report from a JSON file.
func ReadReportFile(path string) (*RunReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading report: %w", err)
	}
	defer f.Close()
	return ReadReport(f)
}
