package obs

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"
)

func sampleGatewayReport() *GatewayReport {
	reg := NewRegistry()
	reg.Counter(MetricGatewayRequests).Add(100)
	reg.Counter(MetricGatewayHedges).Add(8)
	reg.Counter(MetricGatewayHedgeWins).Add(3)
	reg.Counter(MetricGatewayRetries).Add(2)
	reg.Counter(MetricGatewayShed).Add(1)
	reg.Counter(MetricGatewayEjects).Add(1)
	reg.Counter(MetricGatewayReadmits).Add(1)
	reg.Histogram(MetricGatewayLatency).Observe(0.004)
	reg.Histogram(MetricGatewayUpstream).Observe(0.003)
	return BuildGatewayReport(GatewayMeta{
		Addr: "127.0.0.1:8090",
		Replicas: []ReplicaReport{
			{Addr: "127.0.0.1:8091", Healthy: true, Requests: 60, Probes: 10},
			{Addr: "127.0.0.1:8092", Healthy: true, Requests: 48,
				TransportErrors: 2, Ejects: 1, Readmits: 1, Probes: 12, ProbeFailures: 3},
		},
		Uptime: 90 * time.Second,
	}, reg)
}

// TestGatewayReportRoundTrip pins that a built report validates, writes,
// and reads back equal on every summary field.
func TestGatewayReportRoundTrip(t *testing.T) {
	r := sampleGatewayReport()
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r.Requests != 100 || r.Hedges != 8 || r.HedgeWins != 3 || r.Shed != 1 {
		t.Fatalf("counters not read from registry: %+v", r)
	}
	path := filepath.Join(t.TempDir(), "gw.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadGatewayReportFile(path)
	if err != nil {
		t.Fatalf("ReadGatewayReportFile: %v", err)
	}
	if back.Requests != r.Requests || back.Ejects != r.Ejects ||
		len(back.Replicas) != len(r.Replicas) || back.Replicas[1].ProbeFailures != 3 {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", back, r)
	}
}

// TestGatewayReportValidateRejects drives each structural invariant.
func TestGatewayReportValidateRejects(t *testing.T) {
	cases := map[string]func(*GatewayReport){
		"wrong version":            func(r *GatewayReport) { r.Version = 99 },
		"no replicas":              func(r *GatewayReport) { r.Replicas = nil },
		"negative counter":         func(r *GatewayReport) { r.Requests = -1 },
		"hedge wins exceed hedges": func(r *GatewayReport) { r.HedgeWins = r.Hedges + 1 },
		"replica without address":  func(r *GatewayReport) { r.Replicas[0].Addr = "" },
		"probe failures exceed probes": func(r *GatewayReport) {
			r.Replicas[0].ProbeFailures = r.Replicas[0].Probes + 1
		},
		"readmits exceed ejects": func(r *GatewayReport) {
			r.Replicas[0].Readmits = r.Replicas[0].Ejects + 1
		},
		"census disagrees with totals": func(r *GatewayReport) { r.Ejects += 5 },
		"negative uptime":              func(r *GatewayReport) { r.UptimeSeconds = -1 },
	}
	for name, corrupt := range cases {
		r := sampleGatewayReport()
		corrupt(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt report", name)
		}
	}
	var nilReport *GatewayReport
	if err := nilReport.Validate(); err == nil {
		t.Error("nil report validated")
	}
}

// TestGatewayReportReadRejectsCorrupt checks the reader refuses both
// non-JSON and structurally invalid payloads.
func TestGatewayReportReadRejectsCorrupt(t *testing.T) {
	if _, err := ReadGatewayReport(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("reader accepted non-JSON")
	}
	if _, err := ReadGatewayReport(bytes.NewReader([]byte(`{"version":1,"replicas":[]}`))); err == nil {
		t.Error("reader accepted a report with no replicas")
	}
}
