package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestMetricsServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricTasksDone).Add(7)
	addr, shutdown, err := StartMetricsServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(get("/metrics")), &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if snap.Counters[MetricTasksDone] != 7 {
		t.Errorf("/metrics counter = %d, want 7", snap.Counters[MetricTasksDone])
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, `"perfpred"`) {
		t.Errorf("/debug/vars missing published registry:\n%.300s", vars)
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%.300s", body)
	}
}

// TestPublishExpvarIdempotent re-publishes a second registry: the expvar
// must repoint, never panic on duplicate registration.
func TestPublishExpvarIdempotent(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(1)
	b.Counter("x").Add(2)
	PublishExpvar(a)
	PublishExpvar(b)
	if got := published.Load(); got != b {
		t.Error("PublishExpvar did not repoint to the newest registry")
	}
}
