package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Canonical serving metric names. The serving daemon's admission queue,
// micro-batcher and HTTP handlers record into these registry entries,
// and BuildServeReport reads the same names back out of a snapshot, so
// the live /metrics endpoint and the end-of-life ServeReport can never
// disagree about what was measured.
const (
	// MetricServeRequests counts accepted /v1/predict requests.
	MetricServeRequests = "serve.requests"
	// MetricServePredictions counts scored rows (a batch body counts
	// once per row).
	MetricServePredictions = "serve.predictions"
	// MetricServeBatches counts kernel invocations — coalesced batches
	// the micro-batcher executed.
	MetricServeBatches = "serve.batches"
	// MetricServeShed counts requests rejected with 429 because the
	// admission queue was full.
	MetricServeShed = "serve.shed"
	// MetricServeErrors counts requests that failed after admission
	// (validation, encoding, deadline).
	MetricServeErrors = "serve.errors"
	// MetricServeReloads counts successful registry reloads.
	MetricServeReloads = "serve.reloads"
	// MetricServeFaults counts injected faults that fired on the serving
	// path (admission, batch flush, reload) — always 0 outside chaos
	// runs, where the faultinject layer stays disabled.
	MetricServeFaults = "serve.faults_injected"
	// MetricServeBatchSize observes the row count of each executed batch.
	MetricServeBatchSize = "serve.batch_size"
	// MetricServeQueueWait observes seconds a request sat in the
	// admission queue before its batch started.
	MetricServeQueueWait = "serve.queue_wait_seconds"
	// MetricServeLatency observes end-to-end /v1/predict handler seconds.
	MetricServeLatency = "serve.latency_seconds"
	// MetricServeKernel observes seconds inside the encode+predict
	// kernel per batch.
	MetricServeKernel = "serve.kernel_seconds"
	// MetricServeQueueDepth gauges the admission-queue depth sampled at
	// each batch start.
	MetricServeQueueDepth = "serve.queue_depth"
)

// Canonical prediction-cache metric names. The predcache layer records
// into these entries when the daemon runs with -cache-entries > 0; all
// stay 0 with the cache disabled.
const (
	// MetricCacheLookups counts row lookups against the prediction
	// cache. Every lookup is classified as exactly one hit or miss, so
	// lookups == hits + misses at rest.
	MetricCacheLookups = "cache.lookups"
	// MetricCacheHits counts lookups answered from a resolved entry
	// (bit-identical to scoring, no kernel work).
	MetricCacheHits = "cache.hits"
	// MetricCacheMisses counts lookups that had to be scored — either
	// leading a new flight or coalescing onto a pending one.
	MetricCacheMisses = "cache.misses"
	// MetricCacheCoalesced counts the subset of misses that rode another
	// request's in-flight scoring instead of occupying a batcher slot
	// (coalesced ≤ misses).
	MetricCacheCoalesced = "cache.coalesced"
	// MetricCacheEvictions counts entries dropped for capacity (LRU) or
	// displaced by a hash-colliding row.
	MetricCacheEvictions = "cache.evictions"
	// MetricCacheInvalidations counts entries dropped because their
	// artifact generation was superseded by a reload.
	MetricCacheInvalidations = "cache.invalidations"
)

// ServeReportVersion is the current ServeReport schema version.
const ServeReportVersion = 1

// ServeMeta identifies one daemon lifetime for its ServeReport.
type ServeMeta struct {
	// Addr is the bound listen address.
	Addr string
	// ModelsDir is the registry's model directory.
	ModelsDir string
	// Models lists the registry's model names at snapshot time.
	Models []string
	// Generation is the registry's reload generation (1 = initial load).
	Generation int64
	// Uptime is how long the daemon has been serving.
	Uptime time.Duration
}

// ServeReport is the machine-readable record of one serving daemon's
// lifetime — the serving analogue of RunReport: what was served (models,
// registry generation), how much (request/prediction/batch/shed
// counters) and how fast (batch-size, queue-wait, latency and kernel
// histograms). The daemon exposes it live on /v1/report and writes it at
// shutdown behind -report.
type ServeReport struct {
	// Version is the schema version (ServeReportVersion).
	Version int `json:"version"`
	// Addr is the daemon's bound listen address.
	Addr string `json:"addr,omitempty"`
	// ModelsDir is the registry's model directory.
	ModelsDir string `json:"models_dir,omitempty"`
	// Models lists the served model names, sorted.
	Models []string `json:"models,omitempty"`
	// Generation is the registry's reload generation.
	Generation int64 `json:"generation"`
	// UptimeSeconds is the daemon's serving time at snapshot.
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Requests, Predictions, Batches, Shed, Errors and Reloads are the
	// lifetime counters (see the MetricServe* names).
	Requests    int64 `json:"requests"`
	Predictions int64 `json:"predictions"`
	Batches     int64 `json:"batches"`
	Shed        int64 `json:"shed"`
	Errors      int64 `json:"errors"`
	Reloads     int64 `json:"reloads"`
	// FaultsInjected counts injected faults that fired on the serving
	// path during a chaos run (0 in production, where injection is
	// disabled).
	FaultsInjected int64 `json:"faults_injected"`

	// Cache carries the prediction-cache counters (all zero when the
	// daemon runs without -cache-entries).
	Cache CacheStats `json:"cache"`

	// BatchSize, QueueWaitSeconds, LatencySeconds and KernelSeconds
	// summarize the timing histograms.
	BatchSize        HistogramStats `json:"batch_size"`
	QueueWaitSeconds HistogramStats `json:"queue_wait_seconds"`
	LatencySeconds   HistogramStats `json:"latency_seconds"`
	KernelSeconds    HistogramStats `json:"kernel_seconds"`

	// Metrics is the full raw snapshot the summary fields were read
	// from, for anything the typed fields leave out.
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
}

// CacheStats summarizes the prediction cache's lifetime counters (see
// the MetricCache* names). Hits + Misses == Lookups once the daemon is
// quiescent; a live snapshot can catch a lookup between its counter
// increments, so that identity is asserted by the chaos harness on the
// final post-drain report, not by Validate.
type CacheStats struct {
	Lookups       int64 `json:"lookups"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Coalesced     int64 `json:"coalesced"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// BuildServeReport snapshots the registry into a ServeReport.
func BuildServeReport(meta ServeMeta, reg *Registry) *ServeReport {
	r := &ServeReport{
		Version:       ServeReportVersion,
		Addr:          meta.Addr,
		ModelsDir:     meta.ModelsDir,
		Models:        append([]string(nil), meta.Models...),
		Generation:    meta.Generation,
		UptimeSeconds: meta.Uptime.Seconds(),
	}
	if reg != nil {
		snap := reg.Snapshot()
		r.Requests = snap.Counters[MetricServeRequests]
		r.Predictions = snap.Counters[MetricServePredictions]
		r.Batches = snap.Counters[MetricServeBatches]
		r.Shed = snap.Counters[MetricServeShed]
		r.Errors = snap.Counters[MetricServeErrors]
		r.Reloads = snap.Counters[MetricServeReloads]
		r.FaultsInjected = snap.Counters[MetricServeFaults]
		r.Cache = CacheStats{
			Lookups:       snap.Counters[MetricCacheLookups],
			Hits:          snap.Counters[MetricCacheHits],
			Misses:        snap.Counters[MetricCacheMisses],
			Coalesced:     snap.Counters[MetricCacheCoalesced],
			Evictions:     snap.Counters[MetricCacheEvictions],
			Invalidations: snap.Counters[MetricCacheInvalidations],
		}
		r.BatchSize = snap.Histograms[MetricServeBatchSize]
		r.QueueWaitSeconds = snap.Histograms[MetricServeQueueWait]
		r.LatencySeconds = snap.Histograms[MetricServeLatency]
		r.KernelSeconds = snap.Histograms[MetricServeKernel]
		r.Metrics = &snap
	}
	return r
}

// Validate checks structural invariants: supported version, non-negative
// counters, and finite numbers everywhere (JSON cannot carry NaN/Inf).
func (r *ServeReport) Validate() error {
	if r == nil {
		return errors.New("obs: nil serve report")
	}
	if r.Version != ServeReportVersion {
		return fmt.Errorf("obs: unsupported serve report version %d (want %d)", r.Version, ServeReportVersion)
	}
	for name, v := range map[string]int64{
		"requests": r.Requests, "predictions": r.Predictions, "batches": r.Batches,
		"shed": r.Shed, "errors": r.Errors, "reloads": r.Reloads, "generation": r.Generation,
		"faults_injected": r.FaultsInjected,
		"cache.lookups":   r.Cache.Lookups, "cache.hits": r.Cache.Hits,
		"cache.misses": r.Cache.Misses, "cache.coalesced": r.Cache.Coalesced,
		"cache.evictions": r.Cache.Evictions, "cache.invalidations": r.Cache.Invalidations,
	} {
		if v < 0 {
			return fmt.Errorf("obs: serve report %s is negative", name)
		}
	}
	if !isFinite(r.UptimeSeconds) || r.UptimeSeconds < 0 {
		return errors.New("obs: serve report uptime is invalid")
	}
	for name, h := range map[string]HistogramStats{
		"batch_size": r.BatchSize, "queue_wait_seconds": r.QueueWaitSeconds,
		"latency_seconds": r.LatencySeconds, "kernel_seconds": r.KernelSeconds,
	} {
		for _, v := range []float64{h.Sum, h.Min, h.Max, h.Mean, h.P50, h.P95, h.P99} {
			if !isFinite(v) {
				return fmt.Errorf("obs: serve report histogram %s has non-finite value", name)
			}
		}
		if h.Count < 0 {
			return fmt.Errorf("obs: serve report histogram %s has negative count", name)
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *ServeReport) WriteJSON(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path as indented JSON.
func (r *ServeReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: writing serve report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadServeReport parses and validates a serve report.
func ReadServeReport(r io.Reader) (*ServeReport, error) {
	var rep ServeReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: decoding serve report: %w", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// ReadServeReportFile reads a serve report from a JSON file.
func ReadServeReportFile(path string) (*ServeReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading serve report: %w", err)
	}
	defer f.Close()
	return ReadServeReport(f)
}
