package obs

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *RunReport {
	return &RunReport{
		Version:    ReportVersion,
		Command:    "dse",
		Target:     "mcf",
		Seed:       1,
		Workers:    8,
		EpochScale: 1,
		Fraction:   0.01,
		SampleSize: 46,
		SpaceSize:  4608,
		Models: []ModelResult{
			{Kind: "LR-B", EstimateMean: 21.1, EstimateMax: 22.7, EstimatePerFold: []float64{20, 21, 22, 21.8, 22.7}, TrueMAPE: 20.3, StdAPE: 14.0},
			{Kind: "NN-Q", EstimateMean: 7.3, EstimateMax: 8.7, TrueMAPE: 8.4, StdAPE: 9.0},
		},
		Selected:         "NN-Q",
		SelectedTrueMAPE: 8.4,
		WallClock:        WallClock{TotalSeconds: 12.5, SimulateSeconds: 9.25, ModelSeconds: 3.25},
	}
}

func TestReportRoundTripFile(t *testing.T) {
	rep := sampleReport()
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Errorf("round trip mismatch:\nwrote %+v\nread  %+v", rep, got)
	}
}

func TestReportValidate(t *testing.T) {
	if err := sampleReport().Validate(); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
	bad := sampleReport()
	bad.Version = 99
	if err := bad.Validate(); err == nil {
		t.Error("version 99 accepted")
	}
	bad = sampleReport()
	bad.Command = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty command accepted")
	}
	bad = sampleReport()
	bad.Models[0].Kind = ""
	if err := bad.Validate(); err == nil {
		t.Error("unnamed model accepted")
	}
	bad = sampleReport()
	bad.Models[1].TrueMAPE = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN error accepted")
	}
	bad = sampleReport()
	bad.WallClock.TotalSeconds = math.Inf(1)
	if err := bad.Validate(); err == nil {
		t.Error("Inf wall clock accepted")
	}
	var nilRep *RunReport
	if err := nilRep.Validate(); err == nil {
		t.Error("nil report accepted")
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "not json", `{"version":2,"command":"dse"}`, `{"version":1}`} {
		if _, err := ReadReport(strings.NewReader(s)); err == nil {
			t.Errorf("ReadReport(%q) accepted", s)
		}
	}
}

func TestFindModel(t *testing.T) {
	rep := sampleReport()
	if m := rep.FindModel("NN-Q"); m == nil || m.TrueMAPE != 8.4 {
		t.Errorf("FindModel(NN-Q) = %+v", m)
	}
	if m := rep.FindModel("NN-E"); m != nil {
		t.Errorf("FindModel(NN-E) = %+v, want nil", m)
	}
}

func TestWriteJSONIsIndented(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\n  \"command\": \"dse\"") {
		t.Errorf("report JSON not indented:\n%s", buf.String())
	}
}

func sampleActive() *ActiveStats {
	return &ActiveStats{
		Strategy:    "committee",
		InitialSize: 45,
		FinalSize:   90,
		PoolSize:    810,
		Rounds: []ActiveRound{
			{
				Round: 1, LabeledBefore: 45, PoolBefore: 855, Acquired: 15,
				TrainSeconds: 0.5, AcquireSeconds: 0.1,
				Committee: []CommitteeError{{Kind: "NN-Q", TrueMAPE: 8.6}, {Kind: "LR-B", TrueMAPE: 19.6}},
			},
			{
				Round: 2, LabeledBefore: 60, PoolBefore: 840, Acquired: 15,
				TrainSeconds: 0.6, AcquireSeconds: 0.1,
				Committee: []CommitteeError{{Kind: "NN-Q", TrueMAPE: 6.5}, {Kind: "LR-B", TrueMAPE: 19.4}},
			},
		},
	}
}

func TestActiveReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	rep.Active = sampleActive()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Errorf("active round trip mismatch:\nwrote %+v\nread  %+v", rep.Active, got.Active)
	}
	// The section is omitempty: a sampled run's JSON must not mention it.
	buf.Reset()
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"active"`) {
		t.Error("sampled-DSE report serialized an active section")
	}
}

func TestActiveStatsValidate(t *testing.T) {
	if err := sampleActive().Validate(); err != nil {
		t.Errorf("valid active stats rejected: %v", err)
	}
	cases := map[string]func(*ActiveStats){
		"no strategy":     func(a *ActiveStats) { a.Strategy = "" },
		"negative size":   func(a *ActiveStats) { a.InitialSize = -1 },
		"shrinking run":   func(a *ActiveStats) { a.FinalSize = a.InitialSize - 1 },
		"negative pool":   func(a *ActiveStats) { a.PoolSize = -1 },
		"NaN timing":      func(a *ActiveStats) { a.Rounds[0].TrainSeconds = math.NaN() },
		"Inf timing":      func(a *ActiveStats) { a.Rounds[1].AcquireSeconds = math.Inf(1) },
		"anonymous kind":  func(a *ActiveStats) { a.Rounds[0].Committee[0].Kind = "" },
		"non-finite MAPE": func(a *ActiveStats) { a.Rounds[1].Committee[1].TrueMAPE = math.NaN() },
	}
	for name, mutate := range cases {
		a := sampleActive()
		mutate(a)
		if a.Validate() == nil {
			t.Errorf("%s: Validate accepted", name)
		}
		rep := sampleReport()
		rep.Active = a
		if rep.Validate() == nil {
			t.Errorf("%s: RunReport.Validate accepted the bad active section", name)
		}
	}
}
