// Package faultinject is a deterministic, seed-driven fault-injection
// layer for the serving stack's failure paths: injected latency, forced
// errors, context-cancellation-shaped failures and clock skew, fired at
// explicit hook points compiled into internal/engine (task dispatch and
// completion), internal/core (artifact load) and internal/serve
// (admission, batch flush, registry reload).
//
// The layer is compiled in always but costs nothing by default: the
// process-global injector starts as [Disabled], whose Hit is a single
// branch on a per-point enabled flag — no allocations, no locks, no
// atomics — so production hot paths (the zero-allocation kernel and
// batcher paths) are unchanged until a chaos harness calls [Activate].
//
// Determinism: every fire decision at a point is a pure function of the
// injector seed, the point, and that point's call index, computed with a
// splitmix64-style mixer. Re-running the same call sequence against the
// same seed reproduces the same decisions; a chaos failure is reproduced
// by re-running the harness with the seed it prints. (Under concurrency
// the per-point decision *sequence* is fixed, while which caller draws
// which index depends on goroutine interleaving — the harness therefore
// asserts class invariants, never per-caller fault attribution.)
package faultinject

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Point identifies one compiled-in fault-injection hook point.
type Point uint8

const (
	// EngineTaskStart fires when an engine worker dequeues a task, before
	// the task body runs: a forced error fails the task as if its body had
	// returned it, which cancels the surrounding Run like any task error.
	EngineTaskStart Point = iota
	// EngineTaskDone fires after a task body returns nil: a forced error
	// converts the completion into a failure (a late, post-work fault).
	EngineTaskDone
	// CoreArtifactLoad fires at the top of core.LoadPredictorFile: a
	// forced error simulates an unreadable or torn predictor artifact, the
	// failure mode registry reloads must survive without serving it.
	CoreArtifactLoad
	// ServeAdmit fires in Batcher.Predict before a request is enqueued:
	// latency delays admission (driving queued-deadline expiry), a forced
	// error rejects the request before it takes a queue slot.
	ServeAdmit
	// ServeBatchFlush fires in the batch worker just before the coalesced
	// kernel call: latency slows flushes (building queue pressure until
	// the admission queue sheds), a forced error fails the combined batch
	// and exercises the per-request rescore path.
	ServeBatchFlush
	// ServeReload fires at the top of Server.Reload: a forced error fails
	// the reload, which must leave the previous catalog serving.
	ServeReload
	// ServeCacheLookup fires in the prediction-cache path before a
	// request's rows are probed: latency delays the lookup (widening the
	// window for eviction races and reload-during-fill), a forced error
	// makes the request bypass the cache entirely — the fail-open path,
	// which must stay bit-identical to cached serving.
	ServeCacheLookup
	// GatewayRoute fires in the gateway's predict handler before a
	// replica is selected: latency delays routing, a forced error answers
	// the request 503 without consuming any replica capacity.
	GatewayRoute
	// GatewayHedge fires when the gateway is about to launch a hedged
	// second attempt: latency delays the hedge's launch, a forced error
	// suppresses the hedge entirely (the primary attempt keeps running).
	GatewayHedge
	// GatewayHealthProbe fires at the top of each active health probe: a
	// forced error fails the probe as if the replica were unreachable,
	// driving ejection without the replica ever misbehaving.
	GatewayHealthProbe
	// ActiveAcquireRound fires at the top of each active-learning
	// acquisition round, before the committee is retrained: latency
	// delays the round, a forced error fails it — the loop aborts with
	// the round's error, which a chaos harness asserts leaves the
	// already-labeled budget accounting intact.
	ActiveAcquireRound
	numPoints
)

// String names the hook point (used in stats and reports).
func (p Point) String() string {
	switch p {
	case EngineTaskStart:
		return "engine.task_start"
	case EngineTaskDone:
		return "engine.task_done"
	case CoreArtifactLoad:
		return "core.artifact_load"
	case ServeAdmit:
		return "serve.admit"
	case ServeBatchFlush:
		return "serve.batch_flush"
	case ServeReload:
		return "serve.reload"
	case ServeCacheLookup:
		return "serve.cache_lookup"
	case GatewayRoute:
		return "gateway.route"
	case GatewayHedge:
		return "gateway.hedge"
	case GatewayHealthProbe:
		return "gateway.health_probe"
	case ActiveAcquireRound:
		return "active.acquire_round"
	default:
		return fmt.Sprintf("Point(%d)", int(p))
	}
}

// Points lists every hook point, in declaration order.
func Points() []Point {
	out := make([]Point, numPoints)
	for i := range out {
		out[i] = Point(i)
	}
	return out
}

// Plan configures the faults one hook point fires. A fired call first
// sleeps Latency (if any), then returns Err (which may be nil for a
// latency-only fault). To exercise cancellation handling at a point, set
// Err to context.Canceled or context.DeadlineExceeded — callers see
// exactly what a cancelled context would have produced.
type Plan struct {
	// Prob is the probability in [0,1] that a call fires, decided
	// deterministically from the injector seed and the call index.
	Prob float64
	// Every, when non-zero, overrides Prob: every Every-th call fires
	// (counting from the Every-th), a strictly periodic schedule.
	Every uint64
	// Latency is slept on each fired call before Err is returned.
	Latency time.Duration
	// Err is returned by fired calls; nil makes the fault latency-only.
	Err error
	// Limit, when non-zero, caps the total number of fires at the point.
	Limit uint64
}

// pointState is one hook point's compiled plan plus its call/fire
// counters. Counters are atomics so concurrent hook sites never lock.
type pointState struct {
	enabled bool
	plan    Plan
	seed    uint64
	calls   atomic.Uint64
	fires   atomic.Uint64
}

// Injector decides, per hook point, whether and how to perturb
// execution. The zero-configuration injector ([Disabled]) never fires.
type Injector struct {
	seed   int64
	clock  Clock
	points [numPoints]pointState
}

// Option customizes an Injector beyond its per-point plans.
type Option func(*Injector)

// WithClockSkew replaces the injector's clock with one skewed by a fixed
// offset plus a deterministic per-reading wobble in [-jitter, +jitter],
// so time-based bookkeeping (queue waits, latency histograms) is
// exercised against a misbehaving clock.
func WithClockSkew(offset, jitter time.Duration) Option {
	return func(in *Injector) {
		in.clock = &skewClock{offset: offset, jitter: jitter, seed: mix(uint64(in.seed), uint64(numPoints)+1)}
	}
}

// New builds an injector whose plans fire deterministically under seed.
func New(seed int64, plans map[Point]Plan, opts ...Option) *Injector {
	in := &Injector{seed: seed, clock: realClock{}}
	for p, plan := range plans {
		if p >= numPoints {
			panic(fmt.Sprintf("faultinject: unknown point %d", p))
		}
		st := &in.points[p]
		st.enabled = plan.Prob > 0 || plan.Every > 0
		st.plan = plan
		st.seed = mix(uint64(seed), uint64(p)+1)
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// disabled is the package's permanent no-op singleton.
var disabled = &Injector{clock: realClock{}}

// Disabled returns the no-op injector: every Hit is a single branch.
func Disabled() *Injector { return disabled }

// active is the process-global injector consulted by the compiled-in
// hook points. An atomic pointer keeps reads lock-free on hot paths.
var active atomic.Pointer[Injector]

func init() { active.Store(disabled) }

// Active returns the process-global injector. Hook sites call this (or
// cache it at worker construction, which is equally valid because chaos
// harnesses activate before building the system under test).
func Active() *Injector { return active.Load() }

// Activate installs in as the process-global injector and returns a
// function restoring the previous one. A nil in activates Disabled().
// Intended for chaos harnesses and tests; activate before constructing
// the components under test so construction-time snapshots (batch
// worker clocks) observe it.
func Activate(in *Injector) (restore func()) {
	if in == nil {
		in = disabled
	}
	prev := active.Swap(in)
	return func() { active.Store(prev) }
}

// Seed returns the seed the injector's decisions derive from.
func (in *Injector) Seed() int64 { return in.seed }

// Enabled reports whether any hook point has a live plan.
func (in *Injector) Enabled() bool {
	for i := range in.points {
		if in.points[i].enabled {
			return true
		}
	}
	return false
}

// Hit evaluates one hook point. When the point's plan decides this call
// fires, Hit sleeps the plan's latency (abandoning the sleep early, and
// returning the context's error, if ctx is cancelled first) and returns
// the plan's forced error; fired reports whether any fault was applied,
// so call sites can count latency-only faults too. On the disabled
// injector this is one branch: no allocation, no atomic, no lock.
func (in *Injector) Hit(ctx context.Context, p Point) (fired bool, err error) {
	st := &in.points[p]
	if !st.enabled {
		return false, nil
	}
	n := st.calls.Add(1)
	if st.plan.Every > 0 {
		if n%st.plan.Every != 0 {
			return false, nil
		}
	} else if unit(mix(st.seed, n)) >= st.plan.Prob {
		return false, nil
	}
	if st.plan.Limit > 0 {
		// Reserve a fire slot; back out when over the cap. Fires may be
		// attributed to different call indices across concurrent runs, but
		// the total never exceeds Limit.
		if st.fires.Add(1) > st.plan.Limit {
			st.fires.Add(^uint64(0))
			return false, nil
		}
	} else {
		st.fires.Add(1)
	}
	if d := st.plan.Latency; d > 0 {
		if err := sleep(ctx, d); err != nil {
			return true, err
		}
	}
	return true, st.plan.Err
}

// sleep waits d, abandoning early with the context's error if ctx is
// done first. A nil ctx sleeps unconditionally.
func sleep(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PointStats reports one hook point's lifetime activity.
type PointStats struct {
	// Calls is how many times the point was evaluated.
	Calls uint64 `json:"calls"`
	// Fires is how many evaluations applied a fault.
	Fires uint64 `json:"fires"`
}

// Stats snapshots per-point call and fire counts for every enabled
// point, keyed by the point's String name.
func (in *Injector) Stats() map[string]PointStats {
	out := make(map[string]PointStats)
	for i := range in.points {
		st := &in.points[i]
		if !st.enabled {
			continue
		}
		out[Point(i).String()] = PointStats{Calls: st.calls.Load(), Fires: st.fires.Load()}
	}
	return out
}

// Clock returns the injector's clock: real time by default, skewed when
// built WithClockSkew. Long-lived components snapshot this at
// construction so their time reads flow through the injector.
func (in *Injector) Clock() Clock { return in.clock }

// mix is a splitmix64-style finalizer: a high-quality stateless hash of
// (seed, n) used for per-call fire decisions and clock wobble.
func mix(seed, n uint64) uint64 {
	z := seed + n*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a hash to a uniform float64 in [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
