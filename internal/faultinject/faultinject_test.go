package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

// firePattern records which of the first n calls at a point fire.
func firePattern(in *Injector, p Point, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		fired, _ := in.Hit(context.Background(), p)
		out[i] = fired
	}
	return out
}

// TestDeterministicFiring pins the reproducibility contract: two
// injectors with the same seed and plan fire on exactly the same call
// indices, and a different seed produces a different pattern.
func TestDeterministicFiring(t *testing.T) {
	plan := map[Point]Plan{ServeBatchFlush: {Prob: 0.3}}
	a := firePattern(New(7, plan), ServeBatchFlush, 500)
	b := firePattern(New(7, plan), ServeBatchFlush, 500)
	c := firePattern(New(8, plan), ServeBatchFlush, 500)
	fires, diff := 0, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fires++
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	// Prob 0.3 over 500 calls: expect roughly 150 fires; accept a wide
	// deterministic band (the pattern is fixed, this guards the mixer).
	if fires < 100 || fires > 200 {
		t.Fatalf("prob 0.3 fired %d/500 times", fires)
	}
	if !diff {
		t.Fatal("seeds 7 and 8 produced identical patterns")
	}
}

func TestEveryAndLimit(t *testing.T) {
	in := New(1, map[Point]Plan{CoreArtifactLoad: {Every: 3, Limit: 2, Err: errors.New("boom")}})
	var fires []int
	for i := 1; i <= 12; i++ {
		fired, err := in.Hit(context.Background(), CoreArtifactLoad)
		if fired != (err != nil) {
			t.Fatalf("call %d: fired=%v err=%v", i, fired, err)
		}
		if fired {
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 || fires[0] != 3 || fires[1] != 6 {
		t.Fatalf("Every=3 Limit=2 fired on calls %v, want [3 6]", fires)
	}
	st := in.Stats()[CoreArtifactLoad.String()]
	if st.Calls != 12 || st.Fires != 2 {
		t.Fatalf("stats = %+v, want 12 calls 2 fires", st)
	}
}

func TestForcedErrorAndCancellationShape(t *testing.T) {
	in := New(2, map[Point]Plan{ServeReload: {Every: 1, Err: context.Canceled}})
	fired, err := in.Hit(context.Background(), ServeReload)
	if !fired || !errors.Is(err, context.Canceled) {
		t.Fatalf("forced cancellation: fired=%v err=%v", fired, err)
	}
}

func TestLatencySleepHonorsContext(t *testing.T) {
	in := New(3, map[Point]Plan{ServeAdmit: {Every: 1, Latency: time.Minute}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	fired, err := in.Hit(ctx, ServeAdmit)
	if !fired || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled latency: fired=%v err=%v", fired, err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled sleep did not return promptly")
	}
}

func TestDisabledIsInertAndAllocationFree(t *testing.T) {
	in := Disabled()
	if in.Enabled() {
		t.Fatal("disabled injector reports enabled")
	}
	for _, p := range Points() {
		if fired, err := in.Hit(context.Background(), p); fired || err != nil {
			t.Fatalf("%v: disabled injector fired", p)
		}
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		for _, p := range []Point{ServeAdmit, ServeBatchFlush, EngineTaskStart} {
			if fired, _ := Active().Hit(ctx, p); fired {
				t.Fatal("active default fired")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled hook path allocates %v allocs/op, want 0", allocs)
	}
	if _, ok := in.Clock().(realClock); !ok {
		t.Fatalf("disabled injector clock = %T, want realClock", in.Clock())
	}
}

func TestActivateRestore(t *testing.T) {
	in := New(4, map[Point]Plan{ServeAdmit: {Every: 1, Err: errors.New("x")}})
	restore := Activate(in)
	if Active() != in {
		t.Fatal("Activate did not install")
	}
	restore()
	if Active() != Disabled() {
		t.Fatal("restore did not reinstate the previous injector")
	}
	// Activating nil means "disable".
	restore = Activate(nil)
	if Active() != Disabled() {
		t.Fatal("Activate(nil) did not disable")
	}
	restore()
}

func TestSkewClockDeterministicWobble(t *testing.T) {
	mk := func() *Injector {
		return New(9, nil, WithClockSkew(time.Hour, 50*time.Millisecond))
	}
	a, b := mk().Clock(), mk().Clock()
	base := time.Now()
	for i := 0; i < 64; i++ {
		sa, sb := a.Since(base), b.Since(base)
		// Same seed, same reading index: wobble must agree to well under
		// the jitter span (the only difference is real elapsed time
		// between the two calls).
		if d := sa - sb; d < -10*time.Millisecond || d > 10*time.Millisecond {
			t.Fatalf("reading %d: skew clocks diverged by %v", i, d)
		}
		if sa < 59*time.Minute {
			t.Fatalf("reading %d: offset missing (since = %v)", i, sa)
		}
	}
}

// TestPointNamesStable pins every hook point's wire name: chaos
// schedules, stats maps and reports key on these strings, so a rename
// is a breaking change this test makes deliberate.
func TestPointNamesStable(t *testing.T) {
	want := map[Point]string{
		EngineTaskStart:    "engine.task_start",
		EngineTaskDone:     "engine.task_done",
		CoreArtifactLoad:   "core.artifact_load",
		ServeAdmit:         "serve.admit",
		ServeBatchFlush:    "serve.batch_flush",
		ServeReload:        "serve.reload",
		ServeCacheLookup:   "serve.cache_lookup",
		GatewayRoute:       "gateway.route",
		GatewayHedge:       "gateway.hedge",
		GatewayHealthProbe: "gateway.health_probe",
		ActiveAcquireRound: "active.acquire_round",
	}
	pts := Points()
	if len(pts) != len(want) {
		t.Fatalf("Points() lists %d points, this test covers %d — update the name table", len(pts), len(want))
	}
	seen := map[string]Point{}
	for _, p := range pts {
		name, ok := want[p]
		if !ok {
			t.Fatalf("point %d has no pinned name", p)
		}
		if got := p.String(); got != name {
			t.Errorf("point %d named %q, want %q", p, got, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("points %d and %d share the name %q", prev, p, name)
		}
		seen[name] = p
	}
}
