package faultinject

import (
	"sync/atomic"
	"time"
)

// Clock abstracts the time source long-lived serving components read, so
// a chaos harness can skew it. The disabled injector hands out the real
// clock; components snapshot the clock once at construction and use it
// for every subsequent reading.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
	// Since returns the elapsed time between t and Now.
	Since(t time.Time) time.Duration
}

// realClock is the production clock: plain time.Now. Zero-sized, so
// storing it in a Clock interface never allocates.
type realClock struct{}

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }

// skewClock reads real time shifted by a fixed offset plus a
// deterministic per-reading wobble in [-jitter, +jitter]. Consecutive
// readings can therefore move backwards (when the wobble swing exceeds
// real elapsed time) — deliberately, so duration bookkeeping is
// exercised against non-monotone timestamps.
type skewClock struct {
	offset time.Duration
	jitter time.Duration
	seed   uint64
	n      atomic.Uint64
}

func (c *skewClock) Now() time.Time {
	skew := c.offset
	if c.jitter > 0 {
		span := 2*uint64(c.jitter) + 1
		skew += time.Duration(mix(c.seed, c.n.Add(1))%span) - c.jitter
	}
	return time.Now().Add(skew)
}

func (c *skewClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }
