package perfpred_test

import (
	"context"
	"fmt"
	"log"

	"perfpred"
)

// ExampleRunSampledDSE demonstrates the paper's Figure 1a workflow: sample
// a design space, train candidate models, and let cross-validated
// estimates pick the surrogate.
func ExampleRunSampledDSE() {
	full, err := perfpred.SimulateDesignSpace(context.Background(), "applu", perfpred.SimOptions{
		TraceLen: 60_000, // tiny trace keeps the example fast
		Stride:   48,     // systematic 96-point slice of the 4608-point space
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := perfpred.RunSampledDSE(context.Background(), full, 0.25, []perfpred.ModelKind{perfpred.LRB, perfpred.NNS},
		perfpred.TrainConfig{Seed: 1, EpochScale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d of %d points\n", res.SampleSize, full.Len())
	// Output:
	// trained on 24 of 96 points
}

// ExampleRunChronological demonstrates the paper's Figure 1b workflow:
// train on 2005 announcements, predict 2006.
func ExampleRunChronological() {
	recs, err := perfpred.GenerateSPECData("Pentium D", 1)
	if err != nil {
		log.Fatal(err)
	}
	train, err := perfpred.SPECDataset(recs, 2005)
	if err != nil {
		log.Fatal(err)
	}
	future, err := perfpred.SPECDataset(recs, 2006)
	if err != nil {
		log.Fatal(err)
	}
	res, err := perfpred.RunChronological(context.Background(), train, future, []perfpred.ModelKind{perfpred.LRE},
		perfpred.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LR-E predicted %d future systems (error under 5%%: %v)\n",
		future.Len(), res.BestTrueMAPE < 5)
	// Output:
	// LR-E predicted 35 future systems (error under 5%: true)
}

// ExampleTrain demonstrates bringing your own design space to the library.
func ExampleTrain() {
	schema, err := perfpred.NewSchema("latency_ms",
		perfpred.Field{Name: "threads", Kind: perfpred.Numeric},
		perfpred.Field{Name: "pinned", Kind: perfpred.Flag},
	)
	if err != nil {
		log.Fatal(err)
	}
	ds := perfpred.NewDataset(schema)
	for threads := 1.0; threads <= 16; threads++ {
		for _, pinned := range []bool{false, true} {
			y := 160/threads + 4
			if pinned {
				y *= 0.9
			}
			if err := ds.Append([]perfpred.Value{
				perfpred.Num(threads), perfpred.FlagVal(pinned),
			}, y); err != nil {
				log.Fatal(err)
			}
		}
	}
	p, err := perfpred.Train(context.Background(), perfpred.NNQ, ds, perfpred.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	yhat, err := p.Predict([]perfpred.Value{perfpred.Num(8), perfpred.FlagVal(true)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted latency within 25%% of truth: %v\n", yhat > 16 && yhat < 27)
	// Output:
	// predicted latency within 25% of truth: true
}
