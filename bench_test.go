// Benchmarks that regenerate every table and figure of the paper's
// evaluation section at full fidelity (full 4608-point design space,
// recommended trace lengths, full neural training budgets). Each iteration
// reproduces the complete artifact, and key reproduced numbers are
// attached as benchmark metrics:
//
//	go test -bench=Figure2 -benchmem        # one figure
//	go test -bench=. -benchmem              # everything
//
// Substrate micro-benchmarks (cache access, simulation, model training)
// are at the bottom.
package perfpred

import (
	"context"
	"fmt"
	"testing"

	"perfpred/internal/core"
	"perfpred/internal/cpu"
	"perfpred/internal/engine"
	"perfpred/internal/experiments"
	"perfpred/internal/linreg"
	"perfpred/internal/neural"
	"perfpred/internal/space"
	"perfpred/internal/stat"
	"perfpred/internal/trace"
)

// fullCfg is the full-fidelity experiment configuration used by the
// table/figure benchmarks.
func fullCfg() experiments.Config {
	return experiments.Config{Seed: 1, EpochScale: 1.0}
}

// paperFractions are the sampling rates of Figures 2–6 and Table 3.
var paperFractions = []float64{0.01, 0.02, 0.03, 0.04, 0.05}

// benchSampledFigure regenerates one of Figures 2–6.
func benchSampledFigure(b *testing.B, bench string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunSampledStudy(context.Background(), bench, paperFractions, core.SampledModels(), fullCfg())
		if err != nil {
			b.Fatal(err)
		}
		if c, ok := s.Cell(0.01, core.NNE); ok {
			b.ReportMetric(c.TrueMAPE, "NN-E@1%err")
		}
		if c, ok := s.Cell(0.05, core.NNE); ok {
			b.ReportMetric(c.TrueMAPE, "NN-E@5%err")
		}
		if c, ok := s.Cell(0.01, core.LRB); ok {
			b.ReportMetric(c.TrueMAPE, "LR-B@1%err")
		}
	}
}

// BenchmarkFigure2Applu regenerates Figure 2 (applu: estimated vs. true
// error for NN-E, NN-S and LR-B at 1–5 % sampling).
func BenchmarkFigure2Applu(b *testing.B) { benchSampledFigure(b, "applu") }

// BenchmarkFigure3Equake regenerates Figure 3 (equake).
func BenchmarkFigure3Equake(b *testing.B) { benchSampledFigure(b, "equake") }

// BenchmarkFigure4Gcc regenerates Figure 4 (gcc).
func BenchmarkFigure4Gcc(b *testing.B) { benchSampledFigure(b, "gcc") }

// BenchmarkFigure5Mcf regenerates Figure 5 (mcf).
func BenchmarkFigure5Mcf(b *testing.B) { benchSampledFigure(b, "mcf") }

// BenchmarkFigure6Mesa regenerates Figure 6 (mesa).
func BenchmarkFigure6Mesa(b *testing.B) { benchSampledFigure(b, "mesa") }

// benchChronoPanel regenerates one panel of Figures 7–8 (all nine models
// on one family).
func benchChronoPanel(b *testing.B, family string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunChronoStudy(context.Background(), family, core.FigureModels(), fullCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.BestTrue, "best%err")
		var lre float64
		for _, rep := range s.Reports {
			if rep.Kind == core.LRE {
				lre = rep.TrueMAPE
			}
		}
		b.ReportMetric(lre, "LR-E%err")
	}
}

// BenchmarkFigure7Xeon regenerates Figure 7a.
func BenchmarkFigure7Xeon(b *testing.B) { benchChronoPanel(b, "Xeon") }

// BenchmarkFigure7Pentium4 regenerates Figure 7b.
func BenchmarkFigure7Pentium4(b *testing.B) { benchChronoPanel(b, "Pentium 4") }

// BenchmarkFigure7PentiumD regenerates Figure 7c.
func BenchmarkFigure7PentiumD(b *testing.B) { benchChronoPanel(b, "Pentium D") }

// BenchmarkFigure8Opteron regenerates Figure 8a.
func BenchmarkFigure8Opteron(b *testing.B) { benchChronoPanel(b, "Opteron") }

// BenchmarkFigure8Opteron2 regenerates Figure 8b.
func BenchmarkFigure8Opteron2(b *testing.B) { benchChronoPanel(b, "Opteron 2") }

// BenchmarkFigure8Opteron4 regenerates Figure 8c.
func BenchmarkFigure8Opteron4(b *testing.B) { benchChronoPanel(b, "Opteron 4") }

// BenchmarkFigure8Opteron8 regenerates Figure 8d.
func BenchmarkFigure8Opteron8(b *testing.B) { benchChronoPanel(b, "Opteron 8") }

// BenchmarkTable1DesignSpace enumerates and validates the 4608-point
// Table 1 design space.
func BenchmarkTable1DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfgs := space.Enumerate()
		if len(cfgs) != space.SpaceSize {
			b.Fatalf("space size %d", len(cfgs))
		}
		for j := range cfgs {
			if err := cfgs[j].CPUConfig().Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2 regenerates Table 2: the best chronological accuracy and
// method for all seven system families.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2, err := experiments.RunTable2(context.Background(), core.FigureModels(), fullCfg())
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, s := range t2.Studies {
			sum += s.BestTrue
		}
		b.ReportMetric(sum/float64(len(t2.Studies)), "avgBest%err")
	}
}

// BenchmarkTable3 regenerates Table 3: the cross-benchmark average sampled
// design-space error for LR-B / NN-E / NN-S / Select at 1–5 % sampling.
// This is the most expensive benchmark: it simulates the full design space
// for all five figured benchmarks and trains 375 models.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var studies []*experiments.SampledStudy
		for _, bench := range []string{"applu", "equake", "gcc", "mesa", "mcf"} {
			s, err := experiments.RunSampledStudy(context.Background(), bench, paperFractions, core.SampledModels(), fullCfg())
			if err != nil {
				b.Fatal(err)
			}
			studies = append(studies, s)
		}
		t3, err := experiments.ComputeTable3(studies)
		if err != nil {
			b.Fatal(err)
		}
		for fi, f := range t3.Fractions {
			b.ReportMetric(t3.SelectAvg[fi], fmt.Sprintf("Select@%.0f%%", 100*f))
		}
	}
}

// BenchmarkSection41Calibration regenerates the §4.1 statistics: the
// per-benchmark cycle range/variance over the design space and the SPEC
// family statistics.
func BenchmarkSection41Calibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		micro, err := experiments.RunMicroCalibration(context.Background(), fullCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range micro {
			if row.Name == "mcf" {
				b.ReportMetric(row.Range, "mcfRange")
			}
		}
		if _, err := experiments.RunSpecCalibration(context.Background(), fullCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection44Importance regenerates the §4.4 input-importance
// analysis for the Opteron and Pentium D families.
func BenchmarkSection44Importance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, fam := range []string{"Opteron", "Pentium D"} {
			rep, err := experiments.RunImportance(context.Background(), fam, fullCfg())
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.NN) == 0 || len(rep.LR) == 0 {
				b.Fatal("empty importances")
			}
		}
	}
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.

// BenchmarkSimulateConfig measures one full-config simulation of a 100k
// instruction gcc trace (cache, TLB, predictor and pipeline model).
func BenchmarkSimulateConfig(b *testing.B) {
	prof, err := trace.ProfileByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(prof, 100_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := space.Enumerate()[0].CPUConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Simulate(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorMemoizedSweep measures sweeping 512 configurations
// with the memoizing evaluator (substrate passes shared).
func BenchmarkEvaluatorMemoizedSweep(b *testing.B) {
	prof, err := trace.ProfileByName("mesa")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(prof, 100_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfgs := space.Enumerate()[:512]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval, err := cpu.NewEvaluator(tr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := space.Sweep(context.Background(), eval, cfgs, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures synthetic workload generation.
func BenchmarkTraceGeneration(b *testing.B) {
	prof, err := trace.ProfileByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(prof, 100_000, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinregBackward measures one LR-B fit on a 200×24 design.
func BenchmarkLinregBackward(b *testing.B) {
	r := stat.NewRand(1)
	n, p := 200, 24
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, p)
		for j := range x[i] {
			x[i][j] = r.Float64()
		}
		y[i] = 3*x[i][0] - 2*x[i][1] + 0.5*x[i][2] + 0.05*r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linreg.Fit(x, y, nil, linreg.Options{Method: linreg.Backward}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNeuralQuick measures one NN-Q training on 128 records of 24
// inputs.
func BenchmarkNeuralQuick(b *testing.B) {
	r := stat.NewRand(2)
	n, p := 128, 24
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, p)
		for j := range x[i] {
			x[i][j] = r.Float64()
		}
		y[i] = 0.2 + 0.5*x[i][0] + 0.2*x[i][1]*x[i][2]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := neural.Train(context.Background(), x, y, neural.Config{Method: neural.Quick, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateError measures the paper's five-fold error estimation
// for LR-B on a 128-record sample.
func BenchmarkEstimateError(b *testing.B) {
	full, err := SimulateDesignSpace(context.Background(), "applu", SimOptions{TraceLen: 60_000, Stride: 36})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateError(context.Background(), core.LRB, full, core.TrainConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictDataset compares whole-space scoring (the Figure 1a
// "predict all 4608 points" step) through the engine's chunked parallel
// map against the naive sequential row-by-row loop it replaced.
func BenchmarkPredictDataset(b *testing.B) {
	ctx := context.Background()
	full, err := SimulateDesignSpace(ctx, "applu", SimOptions{TraceLen: 60_000, Stride: 4})
	if err != nil {
		b.Fatal(err)
	}
	p, err := Train(ctx, LRB, full, TrainConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.PredictDataset(ctx, full); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < full.Len(); j++ {
				if _, err := p.Predict(full.Row(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// ---------------------------------------------------------------------
// Extension experiments and ablations (beyond the paper's published
// results; see EXPERIMENTS.md).

// BenchmarkExtensionPerApp predicts each CINT2000 application's runtime
// chronologically for the Pentium D family (the experiment the paper ran
// but omitted for space).
func BenchmarkExtensionPerApp(b *testing.B) {
	kinds := []core.ModelKind{core.LRE, core.LRB, core.NNQ}
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunPerAppChrono(context.Background(), "Pentium D", kinds, fullCfg())
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range s.Results {
			if r.BestTrue > worst {
				worst = r.BestTrue
			}
		}
		b.ReportMetric(worst, "worstApp%err")
		b.ReportMetric(s.RateBest, "rate%err")
	}
}

// BenchmarkExtensionRolling trains on every year and predicts the next for
// the Opteron 2 family.
func BenchmarkExtensionRolling(b *testing.B) {
	kinds := []core.ModelKind{core.LRE, core.LRB, core.NNQ}
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunRollingChrono(context.Background(), "Opteron 2", kinds, fullCfg())
		if err != nil {
			b.Fatal(err)
		}
		last := s.Results[len(s.Results)-1]
		b.ReportMetric(last.BestTrue, "2005to2006%err")
	}
}

// BenchmarkAblationSelectCriterion compares the paper's max-fold Select
// criterion against the mean-fold alternative at 2% sampling on mcf.
func BenchmarkAblationSelectCriterion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ab, err := experiments.RunSelectAblation(context.Background(), "mcf", 0.02, core.SampledModels(), fullCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ab.MaxTrue, "maxPick%err")
		b.ReportMetric(ab.MeanTrue, "meanPick%err")
		b.ReportMetric(ab.BestTrue, "oracle%err")
	}
}

// BenchmarkAblationSamplingStrategy compares random sampling (the paper's
// method) against systematic stride sampling at the same budget (NN-E on
// gcc at 2%).
func BenchmarkAblationSamplingStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ab, err := experiments.RunSamplingAblation(context.Background(), "gcc", 0.02, core.NNE, fullCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ab.RandomTrue, "random%err")
		b.ReportMetric(ab.SystematicTrue, "systematic%err")
	}
}

// BenchmarkAblationPrefetcher measures the next-line-prefetcher extension:
// it should speed up the streaming FP workload (applu) and do little for
// the pointer chaser (mcf).
func BenchmarkAblationPrefetcher(b *testing.B) {
	run := func(bench string) (base, pf float64) {
		prof, err := trace.ProfileByName(bench)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := trace.Generate(prof, prof.SimLen, 1)
		if err != nil {
			b.Fatal(err)
		}
		eval, err := cpu.NewEvaluator(tr)
		if err != nil {
			b.Fatal(err)
		}
		cfg := space.Enumerate()[0].CPUConfig()
		r1, err := eval.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Mem.NextLinePrefetch = true
		r2, err := eval.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return r1.Cycles, r2.Cycles
	}
	for i := 0; i < b.N; i++ {
		aBase, aPF := run("applu")
		mBase, mPF := run("mcf")
		b.ReportMetric(100*(aBase-aPF)/aBase, "applu%gain")
		b.ReportMetric(100*(mBase-mPF)/mBase, "mcf%gain")
	}
}

// BenchmarkExtensionCrossFamily quantifies the paper's rationale for
// per-family analysis: cross-family error dwarfs within-family error.
func BenchmarkExtensionCrossFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCrossFamily(context.Background(), "Xeon", "Opteron", core.LRE, fullCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WithinTrue, "within%err")
		b.ReportMetric(r.CrossTrue, "cross%err")
	}
}
