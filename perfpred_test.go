package perfpred

import (
	"context"
	"math"
	"testing"
)

// fastSim keeps the public-API tests cheap: short traces, sparse space.
func fastSim() SimOptions {
	return SimOptions{TraceLen: 60_000, Stride: 48, Workers: 4}
}

func fastTrain() TrainConfig {
	return TrainConfig{Seed: 1, Workers: 4, EpochScale: 0.25}
}

func TestPublicEndToEndSampledDSE(t *testing.T) {
	full, err := SimulateDesignSpace(context.Background(), "applu", fastSim())
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 96 {
		t.Fatalf("space size %d", full.Len())
	}
	res, err := RunSampledDSE(context.Background(), full, 0.25, SampledModels(), fastTrain())
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 24 {
		t.Fatalf("sample size %d", res.SampleSize)
	}
	if res.SelectedTrueMAPE <= 0 || res.SelectedTrueMAPE > 50 {
		t.Fatalf("selected error %.2f implausible", res.SelectedTrueMAPE)
	}
}

func TestPublicEndToEndChronological(t *testing.T) {
	recs, err := GenerateSPECData("Pentium D", 1)
	if err != nil {
		t.Fatal(err)
	}
	train, err := SPECDataset(recs, 2005)
	if err != nil {
		t.Fatal(err)
	}
	future, err := SPECDataset(recs, 2006)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunChronological(context.Background(), train, future, []ModelKind{LRE, NNS}, fastTrain())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("%d reports", len(res.Reports))
	}
	if res.BestTrueMAPE <= 0 {
		t.Fatal("no best error")
	}
}

func TestPublicCustomSchemaFlow(t *testing.T) {
	schema, err := NewSchema("latency",
		Field{Name: "threads", Kind: Numeric},
		Field{Name: "numa", Kind: Flag},
		Field{Name: "alloc", Kind: Categorical, NumericLevels: map[string]float64{"slab": 1, "buddy": 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset(schema)
	allocs := []string{"slab", "buddy"}
	for i := 0; i < 120; i++ {
		threads := float64(1 + i%16)
		numa := i%3 == 0
		alloc := allocs[i%2]
		y := 100/threads + 5
		if numa {
			y *= 0.9
		}
		if alloc == "buddy" {
			y *= 1.1
		}
		if err := ds.Append([]Value{Num(threads), FlagVal(numa), Cat(alloc)}, y); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Train(context.Background(), NNQ, ds, fastTrain())
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict([]Value{Num(8), FlagVal(false), Cat("slab")})
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0/8 + 5
	if math.Abs(got-want)/want > 0.35 {
		t.Fatalf("prediction %.2f far from %.2f", got, want)
	}
	est, err := EstimateError(context.Background(), NNQ, ds, fastTrain())
	if err != nil {
		t.Fatal(err)
	}
	if est.Max <= 0 {
		t.Fatal("no estimate")
	}
}

func TestPublicLists(t *testing.T) {
	if len(AllModels()) != 11 || len(FigureModels()) != 9 || len(SampledModels()) != 3 {
		t.Fatal("model lists wrong")
	}
	if len(SPECFamilies()) != 7 {
		t.Fatal("family list wrong")
	}
	if len(Benchmarks()) != 12 || len(FiguredBenchmarks()) != 5 {
		t.Fatal("benchmark lists wrong")
	}
	if DesignSpaceSize != 4608 || len(MicroDesignSpace()) != 4608 {
		t.Fatal("design space size wrong")
	}
	if len(MicroSchema().Fields) != 24 || len(SPECSchema().Fields) != 32 {
		t.Fatal("schema widths wrong")
	}
	k, err := ParseModelKind("NN-E")
	if err != nil || k != NNE {
		t.Fatal("ParseModelKind broken")
	}
}

func TestPublicSimulateConfig(t *testing.T) {
	cfg := MicroDesignSpace()[100]
	res, err := SimulateConfig("gzip", cfg, SimOptions{TraceLen: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Instructions != 50_000 {
		t.Fatalf("result %+v degenerate", res)
	}
}

func TestPublicSelectSimPoints(t *testing.T) {
	pts, err := SelectSimPoints("gcc", 80_000, 4_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no simulation points")
	}
	w := 0.0
	for _, p := range pts {
		w += p.Weight
	}
	if math.Abs(w-1) > 1e-9 {
		t.Fatalf("weights sum %v", w)
	}
	if _, err := SelectSimPoints("gcc", 1000, 0, 1); err == nil {
		t.Fatal("bad interval: want error")
	}
}
