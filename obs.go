package perfpred

import (
	"io"
	"net"

	"perfpred/internal/core"
	"perfpred/internal/engine"
	"perfpred/internal/obs"
)

// Recorder aggregates execution-engine events into metrics and per-model
// statistics. Attach Recorder.Hook() to TrainConfig.Hook / SimOptions.Hook
// (tee it with TeeHooks to combine with a progress renderer) and build a
// RunReport from it when the run finishes.
type Recorder = obs.Recorder

// NewRecorder returns a recorder stamped with the current time.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// TeeHooks fans one event stream out to several hooks; nil hooks are
// skipped.
func TeeHooks(hooks ...Hook) Hook { return engine.Tee(hooks...) }

// RunReport is the machine-readable record of one experiment run:
// per-model errors in full precision, the selection decision, seeds,
// worker count and a wall-clock/execution breakdown.
type RunReport = obs.RunReport

// ModelResult is one model's scored outcome inside a RunReport.
type ModelResult = obs.ModelResult

// WallClock is a RunReport's coarse wall-clock breakdown (seconds).
type WallClock = obs.WallClock

// ReportMeta identifies a run (command, target, seed, workers) for its
// RunReport.
type ReportMeta = core.ReportMeta

// BuildDSEReport assembles the RunReport of a sampled design-space
// exploration run; rec may be nil.
func BuildDSEReport(res *SampledDSEResult, meta ReportMeta, rec *Recorder) *RunReport {
	return core.BuildDSEReport(res, meta, rec)
}

// BuildActiveDSEReport assembles the RunReport of an active-learning
// design-space exploration run — the sampled-DSE sections plus the
// acquisition trajectory; rec may be nil.
func BuildActiveDSEReport(res *ActiveDSEResult, meta ReportMeta, rec *Recorder) *RunReport {
	return core.BuildActiveDSEReport(res, meta, rec)
}

// BuildChronoReport assembles the RunReport of a chronological prediction
// run; rec may be nil.
func BuildChronoReport(res *ChronoResult, trainSize, futureSize int, meta ReportMeta, rec *Recorder) *RunReport {
	return core.BuildChronoReport(res, trainSize, futureSize, meta, rec)
}

// ReadRunReport parses and validates a RunReport.
func ReadRunReport(r io.Reader) (*RunReport, error) { return obs.ReadReport(r) }

// ReadRunReportFile reads a RunReport from a JSON file.
func ReadRunReportFile(path string) (*RunReport, error) { return obs.ReadReportFile(path) }

// MetricsRegistry is a named collection of counters, gauges and timing
// histograms.
type MetricsRegistry = obs.Registry

// StartMetricsServer serves a recorder's registry over HTTP: expvar on
// /debug/vars, pprof on /debug/pprof/, compact JSON on /metrics. It
// returns the bound address (useful with ":0") and a shutdown func.
func StartMetricsServer(addr string, reg *MetricsRegistry) (net.Addr, func() error, error) {
	return obs.StartMetricsServer(addr, reg)
}
