// Package perfpred predicts the performance of computer-system design
// alternatives from small samples of measured configurations, reproducing
// the methodology of Ozisikyilmaz, Memik and Choudhary, "Machine Learning
// Models to Predict Performance of Computer System Design Alternatives"
// (ICPP 2008).
//
// The library provides:
//
//   - the paper's nine predictive models: four linear-regression
//     variable-selection methods (LR-E, LR-S, LR-B, LR-F) and five
//     neural-network training methods (NN-Q, NN-D, NN-M, NN-P, NN-E),
//     plus the single-layer NN-S baseline and a bagged regression-tree
//     ensemble (TREE-B) registered through the open model-family
//     registry;
//   - the two workflows of the paper's Figure 1: sampled design-space
//     exploration (train on 1–5 % of a design space, predict the rest) and
//     chronological prediction (train on year Y announcements, predict
//     year Y+1);
//   - cross-validated error estimation and the "Select" rule that picks
//     the best model before any test data exists;
//   - the complete evaluation substrate: a trace-driven cycle-approximate
//     out-of-order CPU simulator with the paper's 4608-point Table 1
//     design space and calibrated SPEC2000 workload models, a SimPoint
//     implementation, and a synthetic SPEC announcement database with the
//     paper's seven system families.
//
// # Quick start
//
//	ds, _ := perfpred.SimulateDesignSpace("mcf", perfpred.SimOptions{})
//	res, _ := perfpred.RunSampledDSE(ds, 0.01, perfpred.SampledModels(), perfpred.TrainConfig{Seed: 1})
//	fmt.Printf("selected %v, true error %.2f%%\n", res.Selected, res.SelectedTrueMAPE)
//
// See the examples directory for complete programs.
package perfpred

import (
	"context"
	"io"

	"perfpred/internal/core"
	"perfpred/internal/dataset"
	"perfpred/internal/engine"
	"perfpred/internal/specdata"
	"perfpred/internal/tree"
)

// ModelKind identifies one of the framework's candidate models.
type ModelKind = core.ModelKind

// The nine models of the paper, the NN-S baseline, and the TREE-B
// tree-ensemble family.
const (
	// LRE is linear regression, Enter method (all predictors).
	LRE = core.LRE
	// LRS is stepwise linear regression.
	LRS = core.LRS
	// LRB is backwards linear regression.
	LRB = core.LRB
	// LRF is forwards linear regression.
	LRF = core.LRF
	// NNQ is the Quick neural network.
	NNQ = core.NNQ
	// NND is the Dynamic neural network.
	NND = core.NND
	// NNM is the Multiple (multi-topology) neural network.
	NNM = core.NNM
	// NNP is the Prune neural network.
	NNP = core.NNP
	// NNE is the Exhaustive Prune neural network.
	NNE = core.NNE
	// NNS is the single-layer constant-rate network (Ipek-style baseline).
	NNS = core.NNS
	// TreeB is the bagged CART regression-tree ensemble — the first family
	// registered from outside the paper's zoo, proving the registry seam.
	TreeB = tree.KindTreeB
)

// AllModels lists every model kind.
func AllModels() []ModelKind { return core.AllModels() }

// FigureModels lists the nine models in the paper's Figure 7/8 order.
func FigureModels() []ModelKind { return core.FigureModels() }

// SampledModels lists the three models of the paper's Figures 2–6
// (LR-B, NN-E, NN-S).
func SampledModels() []ModelKind { return core.SampledModels() }

// ParseModelKind converts a label like "NN-E" into a ModelKind.
func ParseModelKind(s string) (ModelKind, error) { return core.ParseModelKind(s) }

// Dataset is a typed table of system configurations with a numeric
// performance target.
type Dataset = dataset.Dataset

// Schema describes a dataset's input fields and target.
type Schema = dataset.Schema

// Field is one input parameter of a schema.
type Field = dataset.Field

// FieldKind is the type of a field (numeric, flag, categorical).
type FieldKind = dataset.FieldKind

// Field kinds.
const (
	Numeric     = dataset.Numeric
	Flag        = dataset.Flag
	Categorical = dataset.Categorical
)

// Value is one cell of a record.
type Value = dataset.Value

// Num builds a numeric value.
func Num(x float64) Value { return dataset.Num(x) }

// FlagVal builds a flag value.
func FlagVal(b bool) Value { return dataset.FlagVal(b) }

// Cat builds a categorical value.
func Cat(s string) Value { return dataset.Cat(s) }

// NewSchema builds a schema from a target name and fields.
func NewSchema(target string, fields ...Field) (*Schema, error) {
	return dataset.NewSchema(target, fields...)
}

// NewDataset returns an empty dataset over the schema.
func NewDataset(s *Schema) *Dataset { return dataset.New(s) }

// TrainConfig configures model training (seed, parallelism, neural epoch
// scaling, instrumentation hook).
type TrainConfig = core.TrainConfig

// Hook observes execution-engine events (task start/finish, durations,
// fold indices, neural epoch progress). Set one on TrainConfig.Hook to get
// live progress from any workflow; hooks are called concurrently and must
// be safe for concurrent use.
type Hook = engine.Hook

// Event is one structured execution-engine observation.
type Event = engine.Event

// EventKind classifies an Event.
type EventKind = engine.EventKind

// Event kinds.
const (
	// TaskStart fires when a pool task begins executing.
	TaskStart = engine.TaskStart
	// TaskDone fires when a pool task completes successfully.
	TaskDone = engine.TaskDone
	// TaskFailed fires when a pool task returns an error or panics.
	TaskFailed = engine.TaskFailed
	// EpochProgress reports neural-network training progress.
	EpochProgress = engine.EpochProgress
)

// Predictor is a trained model bound to its input encoder.
type Predictor = core.Predictor

// Train fits one model kind on a training dataset. Cancelling ctx aborts
// training promptly.
func Train(ctx context.Context, kind ModelKind, train *Dataset, cfg TrainConfig) (*Predictor, error) {
	return core.Train(ctx, kind, train, cfg)
}

// LoadPredictor restores a predictor previously written with
// Predictor.Save; the loaded model scores raw records without retraining.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	return core.LoadPredictor(r)
}

// ReadDatasetCSV parses a CSV written by Dataset.WriteCSV back into a
// dataset over the given schema.
func ReadDatasetCSV(r io.Reader, schema *Schema) (*Dataset, error) {
	return dataset.ReadCSV(r, schema)
}

// DatasetDescription profiles a dataset (per-field ranges, cardinalities
// and target statistics).
type DatasetDescription = dataset.Description

// Describe profiles a dataset the way the paper's §4.1 summarizes its data
// (spread statistics per field and target).
func Describe(d *Dataset) (*DatasetDescription, error) {
	return dataset.Describe(d)
}

// ErrorEstimate is a cross-validated error prediction (paper §3.3).
type ErrorEstimate = core.ErrorEstimate

// EstimateError predicts a model's error from training data alone using
// the paper's five half-split cross-validation folds.
func EstimateError(ctx context.Context, kind ModelKind, train *Dataset, cfg TrainConfig) (ErrorEstimate, error) {
	return core.EstimateError(ctx, kind, train, cfg)
}

// ModelReport carries one model's estimated and measured quality.
type ModelReport = core.ModelReport

// SampledDSEResult is one sampled design-space exploration outcome.
type SampledDSEResult = core.SampledDSEResult

// RunSampledDSE samples the given fraction of a full design-space dataset,
// trains the requested models, estimates their errors by cross-validation,
// measures true errors against the whole space and applies the Select rule
// (paper Figure 1a, §4.2). Cancelling ctx aborts the run promptly.
func RunSampledDSE(ctx context.Context, full *Dataset, fraction float64, kinds []ModelKind, cfg TrainConfig) (*SampledDSEResult, error) {
	return core.RunSampledDSE(ctx, full, fraction, kinds, cfg)
}

// ActiveOptions configures the active-learning extension of sampled DSE
// (acquisition rounds, batch size, strategy name).
type ActiveOptions = core.ActiveOptions

// ActiveDSEResult is one active-learning design-space exploration
// outcome: a SampledDSEResult plus the acquisition trajectory.
type ActiveDSEResult = core.ActiveDSEResult

// ActiveRoundStats records one acquisition round of an active run.
type ActiveRoundStats = core.ActiveRoundStats

// AcquireStrategies lists the registered acquisition strategy names
// ("committee", "diversity", "ei", plus any registered extensions).
func AcquireStrategies() []string { return core.AcquireStrategies() }

// RunActiveDSE replaces the one-shot random sample of RunSampledDSE
// with a model-guided active-learning loop: draw the same initial
// random sample, then spend additional simulation budget in rounds,
// each retraining the committee of requested kinds and acquiring the
// pool points the configured strategy ranks highest. The final labeled
// set is trained, cross-validated and selected exactly as RunSampledDSE
// does, so active and random runs compare report-for-report at equal
// budget. Cancelling ctx aborts the run promptly.
func RunActiveDSE(ctx context.Context, full *Dataset, fraction float64, kinds []ModelKind, cfg TrainConfig, opts ActiveOptions) (*ActiveDSEResult, error) {
	return core.RunActiveDSE(ctx, full, fraction, kinds, cfg, opts)
}

// ChronoResult is one chronological prediction outcome.
type ChronoResult = core.ChronoResult

// RunChronological trains models on one year's systems and evaluates them
// on the following year's (paper Figure 1b, §4.3). Cancelling ctx aborts
// the run promptly.
func RunChronological(ctx context.Context, train, future *Dataset, kinds []ModelKind, cfg TrainConfig) (*ChronoResult, error) {
	return core.RunChronological(ctx, train, future, kinds, cfg)
}

// FieldImportance is one field's relative influence on a model (§4.4).
type FieldImportance = core.FieldImportance

// SPECRecord is one synthesized SPEC announcement.
type SPECRecord = specdata.Record

// SPECFamilies lists the seven system families of the chronological study
// ("Xeon", "Pentium 4", "Pentium D", "Opteron", "Opteron 2", "Opteron 4",
// "Opteron 8").
func SPECFamilies() []string {
	fams := specdata.Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}

// GenerateSPECData synthesizes the announcement records of one family
// across all its years, deterministically for the seed.
func GenerateSPECData(family string, seed int64) ([]SPECRecord, error) {
	f, err := specdata.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	return specdata.Generate(f, seed)
}

// SPECDataset assembles announcement records (optionally filtered to
// specific years) into a dataset whose target is the SPEC rate.
func SPECDataset(records []SPECRecord, years ...int) (*Dataset, error) {
	return specdata.BuildDataset(records, years...)
}

// SPECSchema returns the 32-field announcement schema.
func SPECSchema() *Schema { return specdata.Schema() }
