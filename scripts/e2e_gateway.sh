#!/usr/bin/env bash
# End-to-end smoke test for the replicated serving tier: train tiny
# models, start TWO perfpredd replicas and a perfpredgw fronting them,
# prove cache affinity (identical requests pin to one replica), reload
# through the gateway fan-out, then kill the owning replica mid-stream
# and assert every request keeps succeeding with scores bit-identical
# to offline scoring while the gateway ejects the corpse, and finally
# drain the tier in order (gateway first) checking both final reports.
# Needs only bash + curl + python3; CI runs it as the e2e-gateway job,
# and `make gateway` runs it locally.
set -euo pipefail

work=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do
    [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
  done
  rm -rf "$work"
}
trap cleanup EXIT

say() { printf '\n== %s\n' "$*"; }

say "build binaries"
go build -o "$work" ./cmd/predict ./cmd/perfpredd ./cmd/perfpredgw ./cmd/specgen
cd "$work"
mkdir models

say "train tiny LR-E and TREE-B models on the Pentium D family"
./predict -train -family "Pentium D" -model LR-E -out models/pd-lre.json -seed 7
./predict -train -family "Pentium D" -model TREE-B -out models/pd-tree.json -seed 7

say "derive batch requests and offline reference scores"
./specgen -family "Pentium D" -seed 7 > pd.csv
./predict -model-file models/pd-lre.json -csv pd.csv -emit-request 4 > req.json
./predict -model-file models/pd-lre.json -json req.json > offline.json
./predict -model-file models/pd-tree.json -csv pd.csv -emit-request 4 > tree-req.json
./predict -model-file models/pd-tree.json -json tree-req.json > tree-offline.json

start_replica() { # $1 = index
  ./perfpredd -models models -addr 127.0.0.1:0 -addr-file "addr$1" \
    -report "serve-report$1.json" -queue 64 -max-batch 16 &
  local pid=$!
  pids+=("$pid")
  for _ in $(seq 1 100); do
    [ -s "addr$1" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "replica $1 exited before writing its addr file" >&2
      exit 1
    fi
    sleep 0.1
  done
  [ -s "addr$1" ] || { echo "replica $1 never wrote its addr file" >&2; exit 1; }
}

say "start two perfpredd replicas"
start_replica 1; d1pid=${pids[0]}
start_replica 2; d2pid=${pids[1]}
a1=$(cat addr1); a2=$(cat addr2)
echo "replicas at $a1 (pid $d1pid) and $a2 (pid $d2pid)"

say "start perfpredgw fronting both"
./perfpredgw -replicas "$a1,$a2" -addr 127.0.0.1:0 -addr-file gwaddr \
  -report gw-report.json -probe-interval 100ms -fail-threshold 2 \
  -readmit-threshold 2 -hedge-delay 250ms &
gwpid=$!
pids+=("$gwpid")
for _ in $(seq 1 100); do
  [ -s gwaddr ] && break
  if ! kill -0 "$gwpid" 2>/dev/null; then
    echo "gateway exited before writing its addr file" >&2
    exit 1
  fi
  sleep 0.1
done
[ -s gwaddr ] || { echo "gateway never wrote its addr file" >&2; exit 1; }
base="http://$(cat gwaddr)"
echo "gateway at $base"

say "gateway healthz and /v1/models (proxied)"
curl -sfS "$base/healthz" | python3 -c '
import json, sys
assert json.load(sys.stdin)["status"] == "ok"
'
curl -sfS "$base/v1/models" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["generation"] == 1, r
assert {m["name"] for m in r["models"]} == {"pd-lre", "pd-tree"}, r
print("both models served through the gateway")
'

say "identical requests pin to one replica (cache affinity)"
owner=""
for i in $(seq 1 5); do
  rep=$(curl -sfS -o "online$i.json" -D - -X POST "$base/v1/predict" \
    --data-binary @req.json | tr -d '\r' | awk -F': ' 'tolower($1)=="x-perfpred-replica"{print $2}')
  [ -n "$rep" ] || { echo "request $i: no X-Perfpred-Replica header" >&2; exit 1; }
  if [ -z "$owner" ]; then owner=$rep; fi
  [ "$rep" = "$owner" ] || { echo "affinity broken: $rep vs $owner" >&2; exit 1; }
done
echo "all 5 identical requests landed on $owner"
python3 - <<'EOF'
import json
off = json.load(open("offline.json"))
for i in range(1, 6):
    on = json.load(open(f"online{i}.json"))
    assert on["predictions"] == off["predictions"], (i, on, off)
print("all 5 responses bit-identical to offline scoring")
EOF

say "TREE-B batch through the gateway is bit-identical"
curl -sfS -X POST "$base/v1/predict" --data-binary @tree-req.json > tree-online.json
python3 - <<'EOF'
import json
off = json.load(open("tree-offline.json"))
on = json.load(open("tree-online.json"))
assert on["predictions"] == off["predictions"], (on, off)
print("TREE-B predictions bit-identical through the gateway")
EOF

say "/admin/reload fans to both replicas"
curl -sfS -X POST "$base/admin/reload" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"] and len(r["replicas"]) == 2, r
assert all(x["generation"] == 2 and not x.get("error") for x in r["replicas"]), r
print("both replicas at generation 2")
'

say "kill the owning replica mid-stream; requests must keep succeeding"
if [ "$owner" = "$a1" ]; then victim=$d1pid; survivor=$a2; else victim=$d2pid; survivor=$a1; fi
kill -9 "$victim"
# Immediately hammer the same request: the gateway must retry or
# re-route transparently — the client never sees the crash.
for i in $(seq 1 8); do
  curl -sfS -X POST "$base/v1/predict" --data-binary @req.json > "after$i.json"
done
python3 - <<'EOF'
import json
off = json.load(open("offline.json"))
for i in range(1, 9):
    on = json.load(open(f"after{i}.json"))
    assert on["predictions"] == off["predictions"], (i, on, off)
print("all 8 post-kill responses bit-identical — no request lost")
EOF

say "gateway ejects the dead replica"
for _ in $(seq 1 50); do
  healthy=$(curl -sfS "$base/gw/report" | python3 -c '
import json, sys
r = json.load(sys.stdin)
print(sum(1 for x in r["replicas"] if x["healthy"]))
')
  [ "$healthy" = "1" ] && break
  sleep 0.1
done
[ "$healthy" = "1" ] || { echo "dead replica never ejected (healthy=$healthy)" >&2; exit 1; }
echo "replica census settled: 1 healthy, traffic on $survivor"

say "SIGTERM drains the gateway first, then the surviving replica"
kill -TERM "$gwpid"
wait "$gwpid"
if [ "$survivor" = "$a1" ]; then spid=$d1pid; srep=serve-report1.json; else spid=$d2pid; srep=serve-report2.json; fi
kill -TERM "$spid"
wait "$spid"
python3 - <<EOF
import json
gw = json.load(open("gw-report.json"))
assert gw["version"] == 1 and len(gw["replicas"]) == 2, gw
assert gw["requests"] >= 14, gw
assert gw["ejects"] >= 1, gw
healthy = [r for r in gw["replicas"] if r["healthy"]]
assert len(healthy) == 1, gw["replicas"]
sr = json.load(open("$srep"))
assert sr["version"] == 1 and sr["generation"] == 2, sr
print("gateway report: %d requests, %d retries, %d ejects; survivor drained at generation %d"
      % (gw["requests"], gw["retries"], gw["ejects"], sr["generation"]))
EOF

say "e2e gateway smoke: PASS"
