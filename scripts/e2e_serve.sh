#!/usr/bin/env bash
# End-to-end smoke test for the serving stack: train a tiny model with
# the predict CLI, start perfpredd against it, exercise every endpoint
# over real HTTP, assert the daemon's predictions are bit-identical to
# the offline scoring path, then drain it with SIGTERM and check the
# final ServeReport. Needs only bash + curl + python3 (for JSON
# assertions) and runs in a few seconds; CI runs it as the e2e-serve
# job, and `make e2e` runs it locally.
set -euo pipefail

work=$(mktemp -d)
dpid=""
cleanup() {
  if [ -n "$dpid" ] && kill -0 "$dpid" 2>/dev/null; then
    kill -9 "$dpid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

say() { printf '\n== %s\n' "$*"; }

say "build binaries"
go build -o "$work" ./cmd/predict ./cmd/perfpredd ./cmd/specgen
cd "$work"
mkdir models

say "train tiny LR-E and TREE-B models on the Pentium D family"
./predict -train -family "Pentium D" -model LR-E -out models/pd-lre.json -seed 7
./predict -train -family "Pentium D" -model TREE-B -out models/pd-tree.json -seed 7

say "derive batch requests from real generated data"
./specgen -family "Pentium D" -seed 7 > pd.csv
./predict -model-file models/pd-lre.json -csv pd.csv -emit-request 4 > req.json
./predict -model-file models/pd-lre.json -json req.json > offline.json
./predict -model-file models/pd-tree.json -csv pd.csv -emit-request 4 > tree-req.json
./predict -model-file models/pd-tree.json -json tree-req.json > tree-offline.json

say "start perfpredd"
./perfpredd -models models -addr 127.0.0.1:0 -addr-file addr -report serve-report.json \
  -queue 64 -max-batch 16 &
dpid=$!
for _ in $(seq 1 100); do
  [ -s addr ] && break
  # Fail fast if the daemon already died (bad flags, unloadable models):
  # without this check a startup crash burns the full 10s timeout and
  # reports the misleading "never wrote addr file".
  if ! kill -0 "$dpid" 2>/dev/null; then
    wait "$dpid" || true
    dpid=""
    echo "daemon exited before writing the addr file" >&2
    exit 1
  fi
  sleep 0.1
done
[ -s addr ] || { echo "daemon never wrote addr file" >&2; exit 1; }
base="http://$(cat addr)"
echo "daemon at $base"

say "healthz"
curl -sfS "$base/healthz" | python3 -c '
import json, sys
assert json.load(sys.stdin)["status"] == "ok"
'

say "/v1/models lists both trained models with their family tags"
curl -sfS "$base/v1/models" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["generation"] == 1, r
by_name = {m["name"]: m for m in r["models"]}
assert set(by_name) == {"pd-lre", "pd-tree"}, by_name
lre, tree = by_name["pd-lre"], by_name["pd-tree"]
assert lre["kind"] == "LR-E" and lre["family"] == "linreg/v1", lre
assert tree["kind"] == "TREE-B" and tree["family"] == "tree/v1", tree
for m in (lre, tree):
    assert m["columns"] > 0 and len(m["fields"]) > 0, m
print("models: pd-lre (LR-E, linreg/v1), pd-tree (TREE-B, tree/v1)")
'

say "/v1/predict batch is bit-identical to offline scoring"
curl -sfS -X POST "$base/v1/predict" --data-binary @req.json > online.json
python3 - <<'EOF'
import json, math
off = json.load(open("offline.json"))
on = json.load(open("online.json"))
assert on["model"] == off["model"] == "pd-lre"
assert on["kind"] == "LR-E" and on["n"] == 4
assert all(math.isfinite(y) for y in on["predictions"])
assert on["predictions"] == off["predictions"], (on, off)
print("4 predictions bit-identical:", on["predictions"])
EOF

say "/v1/predict TREE-B batch is bit-identical to offline scoring"
curl -sfS -X POST "$base/v1/predict" --data-binary @tree-req.json > tree-online.json
python3 - <<'EOF'
import json, math
off = json.load(open("tree-offline.json"))
on = json.load(open("tree-online.json"))
assert on["model"] == off["model"] == "pd-tree"
assert on["kind"] == "TREE-B" and on["n"] == 4
assert all(math.isfinite(y) for y in on["predictions"])
assert on["predictions"] == off["predictions"], (on, off)
print("4 TREE-B predictions bit-identical:", on["predictions"])
EOF

say "/v1/predict single row"
python3 -c '
import json
req = json.load(open("req.json"))
json.dump({"model": req["model"], "row": req["rows"][0]}, open("single.json", "w"))
'
curl -sfS -X POST "$base/v1/predict" --data-binary @single.json | python3 -c '
import json, sys
off = json.load(open("offline.json"))
r = json.load(sys.stdin)
assert r["n"] == 1 and r["prediction"] == off["predictions"][0], (r, off)
print("single prediction matches batch row 0")
'

say "malformed request is a clean 400"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/predict" --data-binary '{"model":')
[ "$code" = "400" ] || { echo "malformed request returned $code, want 400" >&2; exit 1; }

say "/metrics counts the traffic"
curl -sfS "$base/metrics" | python3 -c '
import json, sys
m = json.load(sys.stdin)
c = m["counters"]
assert c["serve.requests"] >= 2, c
assert c["serve.predictions"] >= 5, c
assert c["serve.shed"] == 0, c
print("serve.requests=%d serve.predictions=%d" % (c["serve.requests"], c["serve.predictions"]))
'

say "/admin/reload bumps the generation atomically"
curl -sfS -X POST "$base/admin/reload" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["generation"] == 2 and r["models"] == ["pd-lre", "pd-tree"], r
print("reloaded: generation 2")
'

say "SIGTERM drains cleanly and writes the ServeReport"
kill -TERM "$dpid"
wait "$dpid"
dpid=""
python3 - <<'EOF'
import json
r = json.load(open("serve-report.json"))
assert r["version"] == 1
assert r["models"] == ["pd-lre", "pd-tree"] and r["generation"] == 2
assert r["requests"] >= 3 and r["predictions"] >= 9
assert r["shed"] == 0 and r["errors"] == 0 and r["reloads"] == 1
assert r["batch_size"]["count"] >= 2
print("serve report ok: %d requests, %d predictions, %d reloads"
      % (r["requests"], r["predictions"], r["reloads"]))
EOF

say "e2e serve smoke: PASS"
