# Standard checks. `make check` is the tier-1 gate: everything a change
# must pass before merging.

GO ?= go

.PHONY: check build test race vet bench bench-serve bench-active bench-diff bench-figures e2e gateway chaos soak coverage

check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine and everything scheduled on it must be clean under the race
# detector; the internal tree is where all the concurrency lives.
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# Model kernel benchmarks (neural + tree) → BENCH_6.json: the committed
# perf snapshot. Joined against BENCH_baseline.json (pre-PR-3 kernels,
# same machine) so the speedup column tracks the neural-kernel work
# across PRs; the tree benches have no baseline and carry raw numbers.
# Staged through a file (not a pipe) so benchjson's compilation does not
# run concurrently with — and perturb — the measurement.
bench:
	$(GO) test -run xxx -bench 'Train|PredictAll' -benchmem -count=2 ./internal/neural ./internal/tree > bench.out.tmp
	$(GO) run ./cmd/benchjson -baseline BENCH_baseline.json -o BENCH_6.json < bench.out.tmp
	@rm -f bench.out.tmp

# Serving-cache benchmarks → BENCH_8.json: cached (hot-row, 0 allocs)
# vs uncached single-row prediction through the full serving path. No
# baseline file — the uncached bench in the same snapshot IS the
# baseline the cache's latency win is judged against.
bench-serve:
	$(GO) test -run xxx -bench 'CachedPredict|UncachedPredict' -benchmem -count=2 ./internal/serve > bench.out.tmp
	$(GO) run ./cmd/benchjson -o BENCH_8.json < bench.out.tmp
	@rm -f bench.out.tmp

# Active-learning acquisition benchmarks → BENCH_10.json: the chunked
# pool-scoring hot path (which must report 0 allocs/op — the scratch is
# worker-local and growth-only) and one end-to-end batch acquisition per
# registered strategy over a 2048-point pool. No external baseline; the
# committed snapshot is the regression reference bench-diff judges by.
bench-active:
	$(GO) test -run xxx -bench 'Acquire|ScoreChunk' -benchmem -count=2 ./internal/active > bench.out.tmp
	$(GO) run ./cmd/benchjson -o BENCH_10.json < bench.out.tmp
	@rm -f bench.out.tmp

# Perf-regression gate: re-run the serving-cache and acquisition
# benchmarks and diff them against the committed BENCH_8.json /
# BENCH_10.json. ns/op gets a 4x tolerance (CI hardware varies);
# allocs/op gets none, so the cached-predict and score-chunk paths'
# 0 allocs/op are exact pins. An intended regression is waived by
# regenerating the baseline (`make bench-serve` / `make bench-active`)
# and committing it.
bench-diff:
	$(GO) test -run xxx -bench 'CachedPredict|UncachedPredict' -benchmem -count=2 ./internal/serve > bench.out.tmp
	$(GO) run ./cmd/benchdiff -baseline BENCH_8.json < bench.out.tmp
	@rm -f bench.out.tmp
	$(GO) test -run xxx -bench 'Acquire|ScoreChunk' -benchmem -count=2 ./internal/active > bench.out.tmp
	$(GO) run ./cmd/benchdiff -baseline BENCH_10.json < bench.out.tmp
	@rm -f bench.out.tmp

# End-to-end smoke of the serving daemon: train → serve → curl → drain,
# asserting daemon predictions are bit-identical to offline scoring.
e2e:
	./scripts/e2e_serve.sh

# End-to-end smoke of the replicated tier: two perfpredd replicas
# behind perfpredgw, cache affinity proven, one replica killed
# mid-stream with zero client-visible failures, ordered drain.
gateway:
	./scripts/e2e_gateway.sh

# Chaos/soak run against an in-process daemon with fault injection AND
# the prediction cache armed: deterministic seed-derived schedule with a
# duplicate-heavy hot-row class, every 200 bit-compared to offline
# scoring, cache accounting checked post-drain, and a generation-
# boundary epilogue proving no cache hit survives a reload. Invariant
# report written to chaos-report.json; any failure reproduces from the
# printed seed.
chaos:
	$(GO) run ./cmd/perfpredload -seed 7 -duration 30s -cache-entries 2048 -report chaos-report.json

# Gateway soak: the chaos run driven through the replicated topology —
# three daemons behind the cache-affine gateway, fault plans armed,
# one replica killed and restarted mid-schedule. The nightly workflow
# runs this for 5 minutes per seed; locally 60s is a solid smoke.
soak:
	$(GO) run ./cmd/perfpredload -seed 7 -duration 60s -gateway-replicas 3 -replica-kill -cache-entries 2048 -report soak-report.json

# Coverage summary for the core and serving packages (same profile the
# CI coverage job uploads as an artifact).
coverage:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./internal/serve ./internal/core
	$(GO) tool cover -func=coverage.out

# Substrate micro-benchmarks only (full-fidelity figure regeneration is
# expensive; run those by name when needed).
bench-figures:
	$(GO) test -run xxx -bench 'PredictDataset|NeuralQuick|EstimateError|SimulateConfig' -benchmem .
