# Standard checks. `make check` is the tier-1 gate: everything a change
# must pass before merging.

GO ?= go

.PHONY: check build test race vet bench

check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine and everything scheduled on it must be clean under the race
# detector; the internal tree is where all the concurrency lives.
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# Substrate micro-benchmarks only (full-fidelity figure regeneration is
# expensive; run those by name when needed).
bench:
	$(GO) test -run xxx -bench 'PredictDataset|NeuralQuick|EstimateError|SimulateConfig' -benchmem .
