# Standard checks. `make check` is the tier-1 gate: everything a change
# must pass before merging.

GO ?= go

.PHONY: check build test race vet bench bench-figures

check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine and everything scheduled on it must be clean under the race
# detector; the internal tree is where all the concurrency lives.
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# Neural kernel benchmarks → BENCH_3.json: the committed perf snapshot.
# Joined against BENCH_baseline.json (pre-PR-3 kernels, same machine) so
# the speedup column tracks the batched-kernel work across PRs.
# Staged through a file (not a pipe) so benchjson's compilation does not
# run concurrently with — and perturb — the measurement.
bench:
	$(GO) test -run xxx -bench 'Train|PredictAll' -benchmem -count=2 ./internal/neural > bench.out.tmp
	$(GO) run ./cmd/benchjson -baseline BENCH_baseline.json -o BENCH_3.json < bench.out.tmp
	@rm -f bench.out.tmp

# Substrate micro-benchmarks only (full-fidelity figure regeneration is
# expensive; run those by name when needed).
bench-figures:
	$(GO) test -run xxx -bench 'PredictDataset|NeuralQuick|EstimateError|SimulateConfig' -benchmem .
