// Command specgen emits the synthetic SPEC announcement database as CSV —
// one file per family or a single family to stdout — so the chronological
// experiments' raw material can be inspected or consumed by other tools.
//
// Usage:
//
//	specgen -family "Pentium D"            # CSV to stdout
//	specgen -all -dir ./specdata-out       # one CSV per family
//	specgen -family Xeon -stats            # §4.1-style statistics only
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"perfpred"
	"perfpred/internal/specdata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specgen: ")
	family := flag.String("family", "", "family to emit (see perfpred.SPECFamilies)")
	all := flag.Bool("all", false, "emit every family")
	dir := flag.String("dir", ".", "output directory for -all")
	seed := flag.Int64("seed", 1, "generation seed")
	stats := flag.Bool("stats", false, "print §4.1 statistics instead of CSV")
	flag.Parse()

	switch {
	case *all:
		for _, name := range perfpred.SPECFamilies() {
			fname := filepath.Join(*dir, "spec_"+sanitize(name)+".csv")
			if err := writeFamily(name, *seed, fname); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", fname)
		}
	case *family != "":
		if *stats {
			if err := printStats(*family, *seed); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := emitFamily(*family, *seed, os.Stdout); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -family NAME or -all (families: " + strings.Join(perfpred.SPECFamilies(), ", ") + ")")
	}
}

func sanitize(s string) string {
	return strings.ReplaceAll(strings.ToLower(s), " ", "_")
}

func writeFamily(name string, seed int64, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := emitFamily(name, seed, f); err != nil {
		return err
	}
	return f.Close()
}

func emitFamily(name string, seed int64, out *os.File) error {
	recs, err := perfpred.GenerateSPECData(name, seed)
	if err != nil {
		return err
	}
	ds, err := perfpred.SPECDataset(recs)
	if err != nil {
		return err
	}
	return ds.WriteCSV(out)
}

func printStats(name string, seed int64) error {
	fam, err := specdata.FamilyByName(name)
	if err != nil {
		return err
	}
	recs, err := specdata.Generate(fam, seed)
	if err != nil {
		return err
	}
	n, rng, nvar, err := specdata.FamilyStatistics(recs)
	if err != nil {
		return err
	}
	_, pr, pv := fam.PaperStats()
	fmt.Printf("%s: %d records, range %.2f (paper %.2f), normalized variance %.3f (paper %.2f)\n",
		name, n, rng, pr, nvar, pv)
	byYear := map[int]int{}
	for _, r := range recs {
		byYear[r.Year]++
	}
	for _, y := range fam.Years() {
		fmt.Printf("  %d: %d announcements\n", y, byYear[y])
	}
	return nil
}
