// Command simulate runs the cycle-approximate processor model directly:
// one configuration with a full breakdown, or a SimPoint study that
// compares sampled simulation against the full trace.
//
// Usage:
//
//	simulate -bench mcf
//	simulate -bench gcc -width 8 -l1d 64 -l2 1024 -l3 -bpred combination
//	simulate -bench mesa -simpoint -interval 20000
package main

import (
	"flag"
	"fmt"
	"log"

	"perfpred"
	"perfpred/internal/bpred"
	"perfpred/internal/cpu"
	"perfpred/internal/simpoint"
	"perfpred/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	bench := flag.String("bench", "mcf", "benchmark workload")
	traceLen := flag.Int("tracelen", 0, "trace length (0 = recommendation)")
	seed := flag.Int64("seed", 1, "trace seed")
	l1d := flag.Int("l1d", 32, "L1D size KB (16/32/64)")
	l1dLine := flag.Int("l1dline", 64, "L1D line bytes (32/64)")
	l1i := flag.Int("l1i", 32, "L1I size KB")
	l1iLine := flag.Int("l1iline", 64, "L1I line bytes")
	l2 := flag.Int("l2", 1024, "L2 size KB (256 or 1024)")
	l3 := flag.Bool("l3", false, "include the 8MB L3")
	bp := flag.String("bpred", "combination", "branch predictor (perfect/bimodal/2level/combination)")
	width := flag.Int("width", 4, "pipeline width (4 or 8)")
	issueWrong := flag.Bool("issuewrong", false, "wrong-path issue")
	big := flag.Bool("bigwindow", false, "large window (RUU 256/LSQ 128/big TLBs)")
	runSimpoint := flag.Bool("simpoint", false, "run a SimPoint study instead of one config")
	interval := flag.Int("interval", 20000, "SimPoint interval length")
	flag.Parse()

	if *runSimpoint {
		simpointStudy(*bench, *traceLen, *interval, *seed)
		return
	}

	kind, err := bpred.ParseKind(*bp)
	if err != nil {
		log.Fatal(err)
	}
	cfg := perfpred.MicroConfig{
		L1DSizeKB: *l1d, L1DLineB: *l1dLine, L1DAssoc: 4,
		L1ISizeKB: *l1i, L1ILineB: *l1iLine, L1IAssoc: 4,
		L2SizeKB: *l2, L2LineB: 128, L2Assoc: 4,
		BPred: kind, Width: *width, IssueWrong: *issueWrong,
		RUU: 128, LSQ: 64, ITLBKB: 256, DTLBKB: 512,
		FU: cpu.FUConfig{IntALU: 4, IntMult: 2, MemPort: 2, FPALU: 4, FPMult: 2},
	}
	if *l2 == 1024 {
		cfg.L2Assoc = 8
	}
	if *l3 {
		cfg.L3SizeMB, cfg.L3LineB, cfg.L3Assoc = 8, 256, 8
	}
	if *width == 8 {
		cfg.FU = cpu.FUConfig{IntALU: 8, IntMult: 4, MemPort: 4, FPALU: 8, FPMult: 4}
	}
	if *big {
		cfg.RUU, cfg.LSQ, cfg.ITLBKB, cfg.DTLBKB = 256, 128, 1024, 2048
	}

	res, err := perfpred.SimulateConfig(*bench, cfg, perfpred.SimOptions{TraceLen: *traceLen, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on l1d=%d/%dB l1i=%d/%dB l2=%dKB l3=%v bpred=%s width=%d window=%d iw=%v\n",
		*bench, *l1d, *l1dLine, *l1i, *l1iLine, *l2, *l3, kind, *width, cfg.RUU, *issueWrong)
	fmt.Printf("  instructions : %d\n", res.Instructions)
	fmt.Printf("  cycles       : %.0f (IPC %.3f)\n", res.Cycles, res.IPC)
	fmt.Printf("  breakdown    : base %.0f | branch %.0f | fetch %.0f | mem %.0f | tlb %.0f\n",
		res.BaseCycles, res.BranchCycles, res.FetchCycles, res.MemCycles, res.TLBCycles)
	fmt.Printf("  branches     : %d (%d mispredicted, %.2f%%)\n",
		res.Branches, res.BranchMisses, 100*float64(res.BranchMisses)/float64(max64(res.Branches, 1)))
	st := res.MemStats
	fmt.Printf("  L1I          : %d accesses, %d misses (%.2f%%)\n", st.L1IAccesses, st.L1IMisses, pct(st.L1IMisses, st.L1IAccesses))
	fmt.Printf("  L1D          : %d accesses, %d misses (%.2f%%)\n", st.L1DAccesses, st.L1DMisses, pct(st.L1DMisses, st.L1DAccesses))
	fmt.Printf("  L2           : %d accesses, %d misses (%.2f%%)\n", st.L2Accesses, st.L2Misses, pct(st.L2Misses, st.L2Accesses))
	if st.L3Accesses > 0 {
		fmt.Printf("  L3           : %d accesses, %d misses (%.2f%%)\n", st.L3Accesses, st.L3Misses, pct(st.L3Misses, st.L3Accesses))
	}
	fmt.Printf("  TLB misses   : %d instruction, %d data\n", st.ITLBMisses, st.DTLBMisses)
	fmt.Printf("  memory trips : %d\n", st.MemAccesses)
}

func pct(miss, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(miss) / float64(total)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func simpointStudy(bench string, traceLen, interval int, seed int64) {
	prof, err := trace.ProfileByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	if traceLen == 0 {
		traceLen = prof.SimLen
	}
	tr, err := trace.Generate(prof, traceLen, seed)
	if err != nil {
		log.Fatal(err)
	}
	points, err := simpoint.Select(tr, simpoint.Options{IntervalLen: interval, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d instructions → %d simulation points (interval %d)\n",
		bench, traceLen, len(points), interval)

	cfg := perfpred.MicroDesignSpace()[0].CPUConfig()
	full, err := cpu.Simulate(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	cycles := make([]float64, len(points))
	simulated := 0
	for i, p := range points {
		res, err := cpu.SimulateSlice(cfg, tr, p.Start, p.Len, 2*p.Len)
		if err != nil {
			log.Fatal(err)
		}
		cycles[i] = res.Cycles
		simulated += p.Len
		fmt.Printf("  point %d: start %d weight %.3f cluster %d → CPI %.3f\n",
			i, p.Start, p.Weight, p.Cluster, res.Cycles/float64(p.Len))
	}
	est, err := simpoint.WeightedCycles(points, cycles, tr.Len())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full simulation : %.0f cycles (CPI %.3f)\n", full.Cycles, full.Cycles/float64(tr.Len()))
	fmt.Printf("simpoint est.   : %.0f cycles (%.1f%% error) simulating %.1f%% of the trace\n",
		est, 100*abs(est-full.Cycles)/full.Cycles, 100*float64(simulated)/float64(tr.Len()))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
