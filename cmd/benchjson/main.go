// Command benchjson converts `go test -bench` text output into a stable
// JSON snapshot, optionally joining a baseline snapshot to compute
// speedups. It is the tooling behind `make bench`, which regenerates
// BENCH_3.json so the repo carries a perf trajectory across PRs:
//
//	go test -run xxx -bench 'Train|PredictAll' -benchmem -count=2 ./internal/neural \
//	    | go run ./cmd/benchjson -baseline BENCH_baseline.json -o BENCH_3.json
//
// Repeated runs of the same benchmark (-count=N) are averaged. The output
// maps benchmark names (with the Benchmark prefix and any -GOMAXPROCS
// suffix stripped) to ns/op, B/op, allocs/op, and — when a baseline is
// given — the baseline ns/op and the speedup factor. Parsing lives in
// internal/benchfmt, shared with cmd/benchdiff which gates fresh runs
// against these snapshots.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"perfpred/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baselinePath := flag.String("baseline", "", "baseline snapshot JSON to join for speedups")
	flag.Parse()

	snap, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if *baselinePath != "" {
		base, err := benchfmt.Load(*baselinePath)
		if err != nil {
			fatal(fmt.Errorf("reading baseline: %w", err))
		}
		for name, r := range snap.Benchmarks {
			b, ok := base.Benchmarks[name]
			if !ok || r.NsPerOp == 0 {
				continue
			}
			r.BaselineNsPerOp = b.NsPerOp
			r.Speedup = benchfmt.Round3(b.NsPerOp / r.NsPerOp)
			snap.Benchmarks[name] = r
		}
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
