// Command benchjson converts `go test -bench` text output into a stable
// JSON snapshot, optionally joining a baseline snapshot to compute
// speedups. It is the tooling behind `make bench`, which regenerates
// BENCH_3.json so the repo carries a perf trajectory across PRs:
//
//	go test -run xxx -bench 'Train|PredictAll' -benchmem -count=2 ./internal/neural \
//	    | go run ./cmd/benchjson -baseline BENCH_baseline.json -o BENCH_3.json
//
// Repeated runs of the same benchmark (-count=N) are averaged. The output
// maps benchmark names (with the Benchmark prefix and any -GOMAXPROCS
// suffix stripped) to ns/op, B/op, allocs/op, and — when a baseline is
// given — the baseline ns/op and the speedup factor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Baseline join (present only when -baseline is given and names match).
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// Snapshot is the whole JSON document.
type Snapshot struct {
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Pkg is the first benchmarked package; Pkgs lists every package when
	// one run spans several (e.g. the neural and tree kernels together).
	Pkg        string            `json:"pkg,omitempty"`
	Pkgs       []string          `json:"pkgs,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baselinePath := flag.String("baseline", "", "baseline snapshot JSON to join for speedups")
	flag.Parse()

	snap, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if *baselinePath != "" {
		base, err := load(*baselinePath)
		if err != nil {
			fatal(fmt.Errorf("reading baseline: %w", err))
		}
		for name, r := range snap.Benchmarks {
			b, ok := base.Benchmarks[name]
			if !ok || r.NsPerOp == 0 {
				continue
			}
			r.BaselineNsPerOp = b.NsPerOp
			r.Speedup = round3(b.NsPerOp / r.NsPerOp)
			snap.Benchmarks[name] = r
		}
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

func load(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// accum sums repeated runs of one benchmark before averaging.
type accum struct {
	runs   int
	ns     float64
	bytes  int64
	allocs int64
}

// parse reads `go test -bench` output and aggregates benchmark lines.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: map[string]Result{}}
	acc := map[string]*accum{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg := strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if snap.Pkg == "" {
				snap.Pkg = pkg
			}
			snap.Pkgs = append(snap.Pkgs, pkg)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		a := acc[name]
		if a == nil {
			a = &accum{}
			acc[name] = a
		}
		a.runs++
		a.ns += ns
		// -benchmem columns are optional.
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				a.bytes = v
			case "allocs/op":
				a.allocs = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(acc))
	for name := range acc {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := acc[name]
		snap.Benchmarks[name] = Result{
			Runs:        a.runs,
			NsPerOp:     round3(a.ns / float64(a.runs)),
			BytesPerOp:  a.bytes,
			AllocsPerOp: a.allocs,
		}
	}
	return snap, nil
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
