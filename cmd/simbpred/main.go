// Command simbpred is the analog of SimpleScalar's sim-bpred: it runs a
// workload's branch stream through every predictor of the design space and
// reports misprediction rates side by side.
//
//	simbpred -bench gcc
//	simbpred -trace saved.pptr -entries 4096
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"perfpred/internal/bpred"
	"perfpred/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simbpred: ")
	bench := flag.String("bench", "gcc", "benchmark workload")
	tracePath := flag.String("trace", "", "replay a saved trace file instead of generating one")
	traceLen := flag.Int("tracelen", 0, "trace length (0 = recommendation)")
	seed := flag.Int64("seed", 1, "trace seed")
	entries := flag.Int("entries", 2048, "predictor table entries (power of two)")
	flag.Parse()

	var tr *trace.Trace
	var err error
	if *tracePath != "" {
		f, err2 := os.Open(*tracePath)
		if err2 != nil {
			log.Fatal(err2)
		}
		defer f.Close()
		if tr, err = trace.ReadTrace(f); err != nil {
			log.Fatal(err)
		}
	} else {
		prof, err2 := trace.ProfileByName(*bench)
		if err2 != nil {
			log.Fatal(err2)
		}
		n := *traceLen
		if n == 0 {
			n = prof.SimLen
		}
		if tr, err = trace.Generate(prof, n, *seed); err != nil {
			log.Fatal(err)
		}
	}

	var pcs []uint64
	var outs []bool
	for i := range tr.Instrs {
		if tr.Instrs[i].Class == trace.Branch {
			pcs = append(pcs, tr.Instrs[i].PC)
			outs = append(outs, tr.Instrs[i].Taken)
		}
	}
	if len(pcs) == 0 {
		log.Fatal("trace has no branches")
	}
	fmt.Printf("%s: %d instructions, %d conditional branches (%.1f%%)\n\n",
		tr.Name, tr.Len(), len(pcs), 100*float64(len(pcs))/float64(tr.Len()))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "predictor\tmispredicts\trate")
	for _, k := range bpred.Kinds() {
		p, err := bpred.New(k, *entries)
		if err != nil {
			log.Fatal(err)
		}
		rate, err := bpred.MispredictRate(p, pcs, outs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%v\t%d\t%.3f%%\n", k, int(rate*float64(len(pcs))+0.5), 100*rate)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
