// Command chronoprobe runs the chronological 2005→2006 experiment for
// every family across all nine models and prints the error table — the
// calibration tool for the paper's Figures 7–8 and Table 2 shapes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"perfpred/internal/core"
	"perfpred/internal/specdata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chronoprobe: ")
	seed := flag.Int64("seed", 1, "data generation seed")
	scale := flag.Float64("epochs", 1.0, "neural epoch scale")
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "family\t"
	for _, k := range core.FigureModels() {
		header += k.String() + "\t"
	}
	header += "best\tpaper"
	fmt.Fprintln(w, header)

	paperBest := map[string]string{
		"Xeon": "2.1 LR-E", "Pentium 4": "1.5 LR-E", "Pentium D": "2.2 LR-E",
		"Opteron": "2.1 LR-B/S", "Opteron 2": "3.1 LR-B/S",
		"Opteron 4": "3.2 LR-B/S", "Opteron 8": "3.5 LR-B/S",
	}

	for _, f := range specdata.Families() {
		recs, err := specdata.Generate(f, *seed)
		if err != nil {
			log.Fatal(err)
		}
		train, err := specdata.BuildDataset(recs, 2005)
		if err != nil {
			log.Fatal(err)
		}
		future, err := specdata.BuildDataset(recs, 2006)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.RunChronological(context.Background(), train, future, core.FigureModels(), core.TrainConfig{
			Seed: *seed, EpochScale: *scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		line := f.Name + "\t"
		for _, rep := range res.Reports {
			line += fmt.Sprintf("%.1f±%.1f\t", rep.TrueMAPE, rep.StdAPE)
		}
		line += fmt.Sprintf("%.1f %s\t%s", res.BestTrueMAPE, res.Best, paperBest[f.Name])
		fmt.Fprintln(w, line)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
