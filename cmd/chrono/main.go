// Command chrono runs one chronological prediction (paper Figure 1b):
// train the candidate models on a family's 2005 SPEC announcements and
// predict its 2006 announcements.
//
// Usage:
//
//	chrono -family "Opteron 2"
//	chrono -family Xeon -models all -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"perfpred"
	"perfpred/internal/progress"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chrono: ")
	family := flag.String("family", "Opteron", "system family (see -list)")
	modelsArg := flag.String("models", "figure", "comma-separated model kinds, 'figure' (the 9 of Figures 7-8) or 'all' (every registered family incl. TREE-B)")
	seed := flag.Int64("seed", 1, "master seed")
	workers := flag.Int("workers", 0, "parallel workers")
	epochs := flag.Float64("epochs", 1.0, "neural epoch scale")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	verbose := flag.Bool("v", false, "log per-task progress (durations, folds, epochs)")
	report := flag.String("report", "", "write a machine-readable JSON RunReport to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics over HTTP on this address (expvar /debug/vars, pprof /debug/pprof, JSON /metrics), e.g. localhost:6060")
	list := flag.Bool("list", false, "list available families and models")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rec := perfpred.NewRecorder()
	hook := rec.Hook()
	if *verbose {
		hook = progress.New(os.Stderr, false, rec).Hook()
	}
	if *metricsAddr != "" {
		addr, _, err := perfpred.StartMetricsServer(*metricsAddr, rec.Registry())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/debug/vars\n", addr)
	}

	if *list {
		fmt.Println("families:", strings.Join(perfpred.SPECFamilies(), ", "))
		var names []string
		for _, k := range perfpred.AllModels() {
			names = append(names, k.String())
		}
		fmt.Println("models:", strings.Join(names, ", "))
		return
	}

	var kinds []perfpred.ModelKind
	switch *modelsArg {
	case "figure":
		kinds = perfpred.FigureModels()
	case "all":
		kinds = perfpred.AllModels()
	default:
		for _, part := range strings.Split(*modelsArg, ",") {
			k, err := perfpred.ParseModelKind(strings.TrimSpace(part))
			if err != nil {
				log.Fatal(err)
			}
			kinds = append(kinds, k)
		}
	}

	recs, err := perfpred.GenerateSPECData(*family, *seed)
	if err != nil {
		log.Fatal(err)
	}
	train, err := perfpred.SPECDataset(recs, 2005)
	if err != nil {
		log.Fatal(err)
	}
	future, err := perfpred.SPECDataset(recs, 2006)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: training on %d systems announced in 2005, predicting %d systems of 2006\n",
		*family, train.Len(), future.Len())

	start := time.Now()
	res, err := perfpred.RunChronological(ctx, train, future, kinds, perfpred.TrainConfig{
		Seed: *seed, Workers: *workers, EpochScale: *epochs, Hook: hook,
	})
	if err != nil {
		log.Fatal(err)
	}
	finished := time.Now()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\terror%\t±stddev\testimate(max)")
	for _, rep := range res.Reports {
		fmt.Fprintf(tw, "%v\t%.2f\t%.2f\t%.2f\n", rep.Kind, rep.TrueMAPE, rep.StdAPE, rep.Estimate.Max)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest on 2006: %v (%.2f%%); selected from 2005 estimates alone: %v (%.2f%%)\n",
		res.Best, res.BestTrueMAPE, res.Selected, res.SelectedTrueMAPE)

	if *report != "" {
		rep := perfpred.BuildChronoReport(res, train.Len(), future.Len(), perfpred.ReportMeta{
			Command:    "chrono",
			Target:     *family,
			Seed:       *seed,
			Workers:    *workers,
			EpochScale: *epochs,
			WallClock: perfpred.WallClock{
				TotalSeconds: finished.Sub(start).Seconds(),
				ModelSeconds: finished.Sub(start).Seconds(),
			},
		}, rec)
		if err := rep.WriteFile(*report); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report: %s\n", *report)
	}
}
