// Command perfpredgw fronts a set of perfpredd replicas with a
// cache-affine gateway.
//
// It routes POST /v1/predict across -replicas by rendezvous hashing on
// the request's (model, rows) content — the same row hash the replicas'
// prediction caches key on — so identical design points always land on
// the same replica and its cache stays hot. Replicas are actively
// health-checked and ejected/readmitted; transport failures relaunch
// the attempt on the next replica in rendezvous order, and an optional
// hedge delay races a second replica against a slow primary (first
// response wins, loser cancelled).
//
//	POST /v1/predict   route one prediction (response relayed byte-for-byte)
//	GET  /v1/models    proxy to a healthy replica
//	GET  /v1/report    proxy to a healthy replica (that replica's ServeReport)
//	POST /admin/reload fan the reload out to every replica
//	GET  /gw/report    live GatewayReport snapshot
//	GET  /metrics      gateway metrics (plus /debug/vars, /debug/pprof)
//	GET  /healthz      gateway liveness (503 when no replica is healthy)
//
// SIGTERM/SIGINT drain gracefully, mirroring the daemon's contract: the
// listener stops accepting, in-flight requests are answered, probes
// stop, then a final GatewayReport is written to -report if set.
//
//	perfpredd -models models -addr localhost:8091 &
//	perfpredd -models models -addr localhost:8092 &
//	perfpredgw -replicas localhost:8091,localhost:8092 -addr localhost:8090
//	curl -s localhost:8090/v1/predict -d '{"model":"pd-lre","row":[...]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"perfpred/internal/gateway"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfpredgw: ")
	addr := flag.String("addr", "localhost:8090", "listen address (port 0 picks a free port; see -addr-file)")
	replicas := flag.String("replicas", "", "comma-separated perfpredd replica addresses (required)")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "health-probe spacing to a healthy replica")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe deadline")
	failThreshold := flag.Int("fail-threshold", 2, "consecutive failures that eject a replica")
	readmitThreshold := flag.Int("readmit-threshold", 2, "consecutive probe successes that readmit a replica")
	maxInFlight := flag.Int("max-in-flight", 256, "per-replica in-flight cap at the gateway (backstop; excess sheds 429)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "race a second replica after this long (0 disables hedging)")
	timeout := flag.Duration("request-timeout", 15*time.Second, "end-to-end deadline per proxied request")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max time to drain in-flight HTTP requests on shutdown")
	report := flag.String("report", "", "write a final GatewayReport JSON here on shutdown")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	flag.Parse()

	var reps []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			reps = append(reps, r)
		}
	}
	if len(reps) == 0 {
		log.Fatal("at least one -replicas address is required")
	}
	cfg := gateway.Config{
		Replicas:         reps,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		FailThreshold:    *failThreshold,
		ReadmitThreshold: *readmitThreshold,
		MaxInFlight:      *maxInFlight,
		HedgeDelay:       *hedgeDelay,
		RequestTimeout:   *timeout,
	}
	if err := run(cfg, *addr, *addrFile, *report, *drainTimeout); err != nil {
		log.Fatal(err)
	}
}

func run(cfg gateway.Config, addr, addrFile, report string, drainTimeout time.Duration) error {
	gw, err := gateway.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		gw.Close()
		return err
	}
	bound := ln.Addr().String()
	gw.SetAddr(bound)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			gw.Close()
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}
	log.Printf("fronting %d replicas %v on http://%s", len(cfg.Replicas), cfg.Replicas, bound)

	hs := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case sig := <-sigc:
		log.Printf("%v: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		err := hs.Shutdown(ctx)
		cancel()
		// HTTP handlers have returned (or the drain timed out); stop the
		// probe loops and settle the in-flight census before reporting.
		gw.Close()
		if report != "" {
			if werr := gw.Report().WriteFile(report); werr != nil {
				log.Printf("write report: %v", werr)
				if err == nil {
					err = werr
				}
			} else {
				log.Printf("wrote gateway report to %s", report)
			}
		}
		if err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		log.Print("drained cleanly")
		return nil
	case err := <-serveErr:
		gw.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
