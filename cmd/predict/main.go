// Command predict trains a surrogate model and persists it, or loads a
// persisted surrogate and scores configurations — the train-once /
// predict-forever workflow a design team would actually use.
//
// Train and save:
//
//	predict -train -bench mcf -model NN-E -frac 0.02 -out mcf-nne.json
//
// Load and score a CSV (format written by specgen / Dataset.WriteCSV;
// the target column is used only to report the error):
//
//	specgen -family "Pentium D" > pd.csv
//	predict -train -family "Pentium D" -model LR-E -out pd-lre.json
//	predict -model-file pd-lre.json -csv pd.csv
//
// The CLI shares the model loader and the batch JSON wire schema with
// the perfpredd daemon, so a request body scored offline here is
// bit-identical to the same body POSTed to /v1/predict:
//
//	predict -model-file pd-lre.json -csv pd.csv -emit-request 8 > req.json
//	predict -model-file pd-lre.json -json req.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"perfpred"
	"perfpred/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("predict: ")
	train := flag.Bool("train", false, "train a new model")
	bench := flag.String("bench", "", "design-space benchmark to train on (sampled DSE)")
	family := flag.String("family", "", "SPEC family to train on (2005 announcements)")
	model := flag.String("model", "NN-E", "model kind, e.g. NN-E or TREE-B (any registered family; see dse -list)")
	frac := flag.Float64("frac", 0.02, "design-space sampling fraction (with -bench)")
	out := flag.String("out", "model.json", "output path for the trained model")
	modelFile := flag.String("model-file", "", "persisted model to load")
	csvPath := flag.String("csv", "", "CSV of configurations to score")
	jsonPath := flag.String("json", "", "serve-format predict request to score offline")
	emitRequest := flag.Int("emit-request", 0, "emit a serve-format request for the first N CSV rows instead of scoring")
	seed := flag.Int64("seed", 1, "seed")
	stride := flag.Int("stride", 11, "design-space stride during training (with -bench)")
	flag.Parse()

	switch {
	case *train:
		if err := trainAndSave(*bench, *family, *model, *frac, *out, *seed, *stride); err != nil {
			log.Fatal(err)
		}
	case *modelFile != "" && *csvPath != "" && *emitRequest > 0:
		if err := emitRequestJSON(*modelFile, *csvPath, *emitRequest); err != nil {
			log.Fatal(err)
		}
	case *modelFile != "" && *jsonPath != "":
		if err := scoreRequestJSON(*modelFile, *jsonPath); err != nil {
			log.Fatal(err)
		}
	case *modelFile != "" && *csvPath != "":
		if err := loadAndScore(*modelFile, *csvPath); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("use -train (with -bench or -family), -model-file FILE -csv FILE, or -model-file FILE -json REQ")
	}
}

func trainAndSave(bench, family, model string, frac float64, out string, seed int64, stride int) error {
	kind, err := perfpred.ParseModelKind(model)
	if err != nil {
		return err
	}
	var ds *perfpred.Dataset
	switch {
	case bench != "":
		full, err := perfpred.SimulateDesignSpace(context.Background(), bench, perfpred.SimOptions{Seed: seed, Stride: stride})
		if err != nil {
			return err
		}
		sampled, err := perfpred.RunSampledDSE(context.Background(), full, frac, []perfpred.ModelKind{kind}, perfpred.TrainConfig{Seed: seed})
		if err != nil {
			return err
		}
		rep := sampled.Reports[0]
		fmt.Printf("trained %v on %d of %d simulated points; true error %.2f%%\n",
			kind, sampled.SampleSize, full.Len(), rep.TrueMAPE)
		return save(rep.Predictor, out)
	case family != "":
		recs, err := perfpred.GenerateSPECData(family, seed)
		if err != nil {
			return err
		}
		if ds, err = perfpred.SPECDataset(recs, 2005); err != nil {
			return err
		}
		p, err := perfpred.Train(context.Background(), kind, ds, perfpred.TrainConfig{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("trained %v on %d announcements of 2005\n", kind, ds.Len())
		return save(p, out)
	default:
		return fmt.Errorf("-train needs -bench or -family")
	}
}

func save(p *perfpred.Predictor, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("saved model to", path)
	return nil
}

// loadCSV loads a persisted model plus a CSV of configurations in its
// schema, through the same loader (and Validate pass) the daemon's
// registry uses.
func loadCSV(modelPath, csvPath string) (*serve.Model, *perfpred.Dataset, error) {
	m, err := serve.LoadModelFile(modelPath)
	if err != nil {
		return nil, nil, err
	}
	cf, err := os.Open(csvPath)
	if err != nil {
		return nil, nil, err
	}
	defer cf.Close()
	ds, err := perfpred.ReadDatasetCSV(cf, m.Pred.Encoder().Schema())
	if err != nil {
		return nil, nil, err
	}
	return m, ds, nil
}

func loadAndScore(modelPath, csvPath string) error {
	m, ds, err := loadCSV(modelPath, csvPath)
	if err != nil {
		return err
	}
	p := m.Pred
	fmt.Printf("loaded %v model %q; scoring %d configurations from %s\n\n", p.Kind(), m.Name, ds.Len(), csvPath)
	sumAPE := 0.0
	show := ds.Len()
	if show > 10 {
		show = 10
	}
	for i := 0; i < ds.Len(); i++ {
		yhat, err := p.Predict(ds.Row(i))
		if err != nil {
			return err
		}
		y := ds.Target(i)
		ape := 0.0
		if y != 0 {
			ape = 100 * abs(yhat-y) / abs(y)
		}
		sumAPE += ape
		if i < show {
			fmt.Printf("  #%-4d predicted %10.2f   actual %10.2f   error %5.2f%%\n", i, yhat, y, ape)
		}
	}
	if ds.Len() > show {
		fmt.Printf("  ... %d more\n", ds.Len()-show)
	}
	fmt.Printf("\nmean absolute percentage error: %.2f%%\n", sumAPE/float64(ds.Len()))
	return nil
}

// emitRequestJSON writes the serve-format predict request for the first
// n CSV rows to stdout — the body can be POSTed to perfpredd's
// /v1/predict verbatim, or scored offline with -json.
func emitRequestJSON(modelPath, csvPath string, n int) error {
	m, ds, err := loadCSV(modelPath, csvPath)
	if err != nil {
		return err
	}
	req, err := serve.RequestFromDataset(m.Name, ds, n)
	if err != nil {
		return err
	}
	return serve.EncodeJSON(os.Stdout, req)
}

// scoreRequestJSON scores a serve-format request file offline, through
// the exact decode/validate/kernel path the daemon uses, and prints the
// serve-format response.
func scoreRequestJSON(modelPath, reqPath string) error {
	m, err := serve.LoadModelFile(modelPath)
	if err != nil {
		return err
	}
	f, err := os.Open(reqPath)
	if err != nil {
		return err
	}
	defer f.Close()
	req, err := serve.DecodePredictRequest(f)
	if err != nil {
		return err
	}
	if req.Model != m.Name {
		log.Printf("note: request names model %q, scoring with %q", req.Model, m.Name)
		req.Model = m.Name
	}
	resp, err := serve.ScoreRequest(context.Background(), m, req)
	if err != nil {
		return err
	}
	return serve.EncodeJSON(os.Stdout, resp)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
