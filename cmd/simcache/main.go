// Command simcache is the analog of SimpleScalar's sim-cache: it runs a
// workload trace through a configurable memory hierarchy and reports miss
// rates per level — without any pipeline timing model.
//
//	simcache -bench mcf
//	simcache -bench gcc -l1d 64:64:4 -l2 1024:128:8 -l3 8192:256:8
//	simcache -trace saved.pptr -prefetch
//
// Cache specs are size-KB:line-B:assoc.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"perfpred/internal/mem"
	"perfpred/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simcache: ")
	bench := flag.String("bench", "mcf", "benchmark workload")
	tracePath := flag.String("trace", "", "replay a saved trace file instead of generating one")
	traceLen := flag.Int("tracelen", 0, "trace length (0 = recommendation)")
	seed := flag.Int64("seed", 1, "trace seed")
	l1d := flag.String("l1d", "32:64:4", "L1D as sizeKB:lineB:assoc")
	l1i := flag.String("l1i", "32:64:4", "L1I as sizeKB:lineB:assoc")
	l2 := flag.String("l2", "1024:128:8", "L2 as sizeKB:lineB:assoc")
	l3 := flag.String("l3", "", "optional L3 as sizeKB:lineB:assoc")
	itlb := flag.Int("itlb", 256, "ITLB coverage KB")
	dtlb := flag.Int("dtlb", 512, "DTLB coverage KB")
	prefetch := flag.Bool("prefetch", false, "enable the next-line L1D prefetcher")
	flag.Parse()

	tr, err := loadTrace(*tracePath, *bench, *traceLen, *seed)
	if err != nil {
		log.Fatal(err)
	}

	cfg := mem.HierarchyConfig{
		ITLB:             mem.TLBConfig{CoverageKB: *itlb, Assoc: 4, MissPenaltyCycles: 30},
		DTLB:             mem.TLBConfig{CoverageKB: *dtlb, Assoc: 4, MissPenaltyCycles: 30},
		MemLatencyCyc:    200,
		NextLinePrefetch: *prefetch,
	}
	if cfg.L1D, err = parseCache(*l1d, 1); err != nil {
		log.Fatal(err)
	}
	if cfg.L1I, err = parseCache(*l1i, 1); err != nil {
		log.Fatal(err)
	}
	if cfg.L2, err = parseCache(*l2, 12); err != nil {
		log.Fatal(err)
	}
	if *l3 != "" {
		if cfg.L3, err = parseCache(*l3, 40); err != nil {
			log.Fatal(err)
		}
	}
	h, err := mem.NewHierarchy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for i := range tr.Instrs {
		ins := &tr.Instrs[i]
		h.AccessInst(ins.PC)
		switch ins.Class {
		case trace.Load, trace.Store:
			h.AccessData(ins.Addr)
		}
	}
	st := h.Stats()
	fmt.Printf("%s: %d instructions\n", tr.Name, tr.Len())
	level := func(name string, acc, miss uint64) {
		if acc == 0 {
			return
		}
		fmt.Printf("  %-5s %12d accesses %12d misses  %6.3f%% miss rate\n",
			name, acc, miss, 100*float64(miss)/float64(acc))
	}
	level("L1I", st.L1IAccesses, st.L1IMisses)
	level("L1D", st.L1DAccesses, st.L1DMisses)
	level("L2", st.L2Accesses, st.L2Misses)
	level("L3", st.L3Accesses, st.L3Misses)
	fmt.Printf("  TLB   %d instruction misses, %d data misses\n", st.ITLBMisses, st.DTLBMisses)
	fmt.Printf("  memory trips: %d", st.MemAccesses)
	if *prefetch {
		fmt.Printf("   prefetches: %d", st.Prefetches)
	}
	fmt.Println()
}

func loadTrace(path, bench string, traceLen int, seed int64) (*trace.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadTrace(f)
	}
	prof, err := trace.ProfileByName(bench)
	if err != nil {
		return nil, err
	}
	if traceLen == 0 {
		traceLen = prof.SimLen
	}
	return trace.Generate(prof, traceLen, seed)
}

func parseCache(spec string, latency int) (mem.CacheConfig, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return mem.CacheConfig{}, fmt.Errorf("cache spec %q is not sizeKB:lineB:assoc", spec)
	}
	nums := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return mem.CacheConfig{}, fmt.Errorf("cache spec %q: %w", spec, err)
		}
		nums[i] = v
	}
	return mem.CacheConfig{SizeKB: nums[0], LineBytes: nums[1], Assoc: nums[2], LatencyCycles: latency}, nil
}
