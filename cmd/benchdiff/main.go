// Command benchdiff gates a fresh benchmark run against a committed
// snapshot. It reads `go test -bench` text output on stdin, compares it
// to the baseline JSON (as written by cmd/benchjson), and exits 1 on
// regression:
//
//	go test -run xxx -bench 'CachedPredict|UncachedPredict' -benchmem -count=2 ./internal/serve \
//	    | go run ./cmd/benchdiff -baseline BENCH_8.json
//
// Three rules, chosen so the gate is meaningful on noisy shared CI
// runners without drowning in false alarms:
//
//   - Every benchmark in the baseline must appear in the fresh run; a
//     missing benchmark is a failure (a silently deleted or renamed
//     benchmark would otherwise retire its own regression gate).
//   - ns/op may not exceed baseline * -tolerance (default 4x: CI
//     hardware differs from the machine that wrote the baseline, so
//     only order-of-magnitude regressions are actionable).
//   - allocs/op is deterministic, not timing noise, so it gets no
//     tolerance: any increase fails, and a baseline of 0 allocs/op is
//     an exact pin — the hot path stayed allocation-free.
//
// An intended regression is waived by regenerating the baseline
// (`make bench-serve`) and committing the new snapshot alongside the
// change that explains it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"perfpred/internal/benchfmt"
)

func main() {
	baselinePath := flag.String("baseline", "", "committed snapshot JSON to gate against (required)")
	tolerance := flag.Float64("tolerance", 4.0, "max allowed fresh/baseline ns per op ratio")
	flag.Parse()
	if *baselinePath == "" {
		fatal(fmt.Errorf("-baseline is required"))
	}
	base, err := benchfmt.Load(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("reading baseline: %w", err))
	}
	fresh, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(fresh.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	lines, failures := compare(base, fresh, *tolerance)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(failures) > 0 {
		fmt.Printf("\nFAIL: %d benchmark regression(s) against %s:\n", len(failures), *baselinePath)
		for _, f := range failures {
			fmt.Println("  - " + f)
		}
		fmt.Println("\nIf this regression is intended, regenerate and commit the baseline" +
			" (`make bench-serve` for BENCH_8.json) in the same change that explains it.")
		os.Exit(1)
	}
	fmt.Printf("\nPASS: %d benchmark(s) within tolerance %.1fx of %s\n",
		len(base.Benchmarks), *tolerance, *baselinePath)
}

// compare applies the three gate rules and returns the per-benchmark
// report lines plus the failure list (empty = gate passes).
func compare(base, fresh *benchfmt.Snapshot, tolerance float64) (lines, failures []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		f, ok := fresh.Benchmarks[name]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s: present in baseline but missing from the fresh run", name))
			continue
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = f.NsPerOp / b.NsPerOp
		}
		lines = append(lines, fmt.Sprintf("%-24s baseline %12.2f ns/op  fresh %12.2f ns/op  ratio %5.2fx  allocs %d -> %d",
			name, b.NsPerOp, f.NsPerOp, ratio, b.AllocsPerOp, f.AllocsPerOp))
		if b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*tolerance {
			failures = append(failures,
				fmt.Sprintf("%s: %.2f ns/op is %.2fx the baseline %.2f ns/op (tolerance %.1fx)",
					name, f.NsPerOp, ratio, b.NsPerOp, tolerance))
		}
		switch {
		case b.AllocsPerOp == 0 && f.AllocsPerOp != 0:
			failures = append(failures,
				fmt.Sprintf("%s: baseline pins 0 allocs/op but the fresh run allocates %d", name, f.AllocsPerOp))
		case f.AllocsPerOp > b.AllocsPerOp:
			failures = append(failures,
				fmt.Sprintf("%s: allocs/op grew %d -> %d (allocation counts are deterministic; no tolerance)",
					name, b.AllocsPerOp, f.AllocsPerOp))
		}
	}
	return lines, failures
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
