package main

import (
	"strings"
	"testing"

	"perfpred/internal/benchfmt"
)

func snapshot(t *testing.T, benchText string) *benchfmt.Snapshot {
	t.Helper()
	s, err := benchfmt.Parse(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func baseline() *benchfmt.Snapshot {
	return &benchfmt.Snapshot{Benchmarks: map[string]benchfmt.Result{
		"CachedPredict":   {Runs: 2, NsPerOp: 165, BytesPerOp: 0, AllocsPerOp: 0},
		"UncachedPredict": {Runs: 2, NsPerOp: 2060, BytesPerOp: 374, AllocsPerOp: 4},
	}}
}

// TestCompareWithinTolerance pins the pass case: slower-but-tolerable
// timings and unchanged allocation counts clear the gate.
func TestCompareWithinTolerance(t *testing.T) {
	fresh := snapshot(t, `
BenchmarkCachedPredict-8     100	 320 ns/op	   0 B/op	 0 allocs/op
BenchmarkUncachedPredict-8   100	4100 ns/op	 374 B/op	 4 allocs/op
`)
	lines, failures := compare(baseline(), fresh, 4.0)
	if len(failures) != 0 {
		t.Fatalf("in-tolerance run failed the gate: %v", failures)
	}
	if len(lines) != 2 {
		t.Fatalf("want 2 report lines, got %v", lines)
	}
}

// TestCompareCatchesSyntheticRegression is the gate proving itself: a
// synthetically regressed run — ns/op blown past tolerance AND the
// zero-alloc pin broken — must fail, with one failure per rule.
func TestCompareCatchesSyntheticRegression(t *testing.T) {
	fresh := snapshot(t, `
BenchmarkCachedPredict-8     100	 900 ns/op	  48 B/op	 2 allocs/op
BenchmarkUncachedPredict-8   100	2100 ns/op	 374 B/op	 4 allocs/op
`)
	_, failures := compare(baseline(), fresh, 4.0)
	if len(failures) != 2 {
		t.Fatalf("want 2 failures (ns/op tolerance + zero-alloc pin), got %v", failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "tolerance") || !strings.Contains(joined, "pins 0 allocs/op") {
		t.Errorf("failure text does not name both rules:\n%s", joined)
	}
}

// TestCompareAllocGrowthNoTolerance pins that allocation-count growth
// fails even when timing is fine and the baseline is not zero-alloc.
func TestCompareAllocGrowthNoTolerance(t *testing.T) {
	fresh := snapshot(t, `
BenchmarkCachedPredict-8     100	 170 ns/op	   0 B/op	 0 allocs/op
BenchmarkUncachedPredict-8   100	2100 ns/op	 400 B/op	 5 allocs/op
`)
	_, failures := compare(baseline(), fresh, 4.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op grew 4 -> 5") {
		t.Fatalf("want exactly the alloc-growth failure, got %v", failures)
	}
}

// TestCompareMissingBenchmark pins that deleting a benchmark cannot
// silently retire its own gate.
func TestCompareMissingBenchmark(t *testing.T) {
	fresh := snapshot(t, `
BenchmarkCachedPredict-8     100	 170 ns/op	   0 B/op	 0 allocs/op
`)
	_, failures := compare(baseline(), fresh, 4.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing from the fresh run") {
		t.Fatalf("want exactly the missing-benchmark failure, got %v", failures)
	}
}

// TestCompareIgnoresExtraFresh pins that new benchmarks without a
// baseline entry are not failures — they join the gate when the next
// snapshot is committed.
func TestCompareIgnoresExtraFresh(t *testing.T) {
	fresh := snapshot(t, `
BenchmarkCachedPredict-8     100	 170 ns/op	   0 B/op	 0 allocs/op
BenchmarkUncachedPredict-8   100	2100 ns/op	 374 B/op	 4 allocs/op
BenchmarkBrandNew-8          100	9999 ns/op	 999 B/op	99 allocs/op
`)
	lines, failures := compare(baseline(), fresh, 4.0)
	if len(failures) != 0 {
		t.Fatalf("extra fresh benchmark failed the gate: %v", failures)
	}
	if len(lines) != 2 {
		t.Fatalf("extra fresh benchmark leaked into the report: %v", lines)
	}
}

// TestCompareAgainstCommittedBaseline loads the real committed
// BENCH_8.json so schema drift between benchjson and benchdiff cannot
// land silently.
func TestCompareAgainstCommittedBaseline(t *testing.T) {
	base, err := benchfmt.Load("../../BENCH_8.json")
	if err != nil {
		t.Fatalf("loading committed BENCH_8.json: %v", err)
	}
	if len(base.Benchmarks) == 0 {
		t.Fatal("committed BENCH_8.json has no benchmarks")
	}
	if r, ok := base.Benchmarks["CachedPredict"]; !ok || r.AllocsPerOp != 0 {
		t.Fatalf("committed baseline no longer pins CachedPredict at 0 allocs/op: %+v", base.Benchmarks)
	}
}
