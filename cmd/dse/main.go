// Command dse runs one sampled design-space exploration (paper Figure 1a):
// simulate the Table 1 design space for a benchmark, sample a fraction of
// it, train the candidate models, estimate their errors by
// cross-validation, pick the best, and report how well the chosen model
// predicts the whole space.
//
// With -active the one-shot random sample becomes the seed of a
// model-guided active-learning loop: the committee of requested models
// retrains every round and the acquisition strategy picks which design
// points to simulate next, at the same total budget accounting.
//
// Usage:
//
//	dse -bench mcf -frac 0.01
//	dse -bench gcc -frac 0.03 -models LR-B,NN-E,NN-S -seed 7
//	dse -bench mcf -frac 0.01 -active -rounds 4 -batch 12 -acquire committee
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"perfpred"
	"perfpred/internal/progress"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dse: ")
	bench := flag.String("bench", "mcf", "benchmark workload (see -list)")
	frac := flag.Float64("frac", 0.01, "fraction of the design space to sample")
	modelsArg := flag.String("models", "LR-B,NN-E,NN-S", "comma-separated model kinds, or 'all' for every registered family incl. TREE-B")
	seed := flag.Int64("seed", 1, "master seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	epochs := flag.Float64("epochs", 1.0, "neural epoch scale")
	traceLen := flag.Int("tracelen", 0, "trace length override")
	stride := flag.Int("stride", 0, "design-space stride (0 = full space)")
	activeRun := flag.Bool("active", false, "run the model-guided active-learning loop instead of one-shot sampling")
	rounds := flag.Int("rounds", 4, "active: acquisition rounds after the initial sample")
	batch := flag.Int("batch", 0, "active: design points acquired per round (0 = initial sample / rounds)")
	acquire := flag.String("acquire", "committee", "active: acquisition strategy (see -list)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	verbose := flag.Bool("v", false, "log per-task progress (durations, folds, epochs)")
	report := flag.String("report", "", "write a machine-readable JSON RunReport to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics over HTTP on this address (expvar /debug/vars, pprof /debug/pprof, JSON /metrics), e.g. localhost:6060")
	list := flag.Bool("list", false, "list available benchmarks and models")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rec := perfpred.NewRecorder()
	hook := rec.Hook()
	if *verbose {
		hook = progress.New(os.Stderr, false, rec).Hook()
	}
	if *metricsAddr != "" {
		addr, _, err := perfpred.StartMetricsServer(*metricsAddr, rec.Registry())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/debug/vars\n", addr)
	}

	if *list {
		fmt.Println("benchmarks:", strings.Join(perfpred.Benchmarks(), ", "))
		var names []string
		for _, k := range perfpred.AllModels() {
			names = append(names, k.String())
		}
		fmt.Println("models:", strings.Join(names, ", "))
		fmt.Println("acquisition strategies:", strings.Join(perfpred.AcquireStrategies(), ", "))
		return
	}

	kinds, err := parseModels(*modelsArg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulating design space for %s...\n", *bench)
	start := time.Now()
	full, err := perfpred.SimulateDesignSpace(ctx, *bench, perfpred.SimOptions{
		TraceLen: *traceLen, Seed: *seed, Workers: *workers, Stride: *stride, Hook: hook,
	})
	if err != nil {
		log.Fatal(err)
	}
	simulated := time.Now()
	fmt.Printf("space: %d configurations; sampling %.1f%%\n", full.Len(), 100**frac)

	cfg := perfpred.TrainConfig{
		Seed: *seed, Workers: *workers, EpochScale: *epochs, Hook: hook,
	}
	var res *perfpred.SampledDSEResult
	var ares *perfpred.ActiveDSEResult
	if *activeRun {
		ares, err = perfpred.RunActiveDSE(ctx, full, *frac, kinds, cfg, perfpred.ActiveOptions{
			Rounds: *rounds, Batch: *batch, Acquire: *acquire,
		})
		if err != nil {
			log.Fatal(err)
		}
		res = &ares.SampledDSEResult
	} else {
		res, err = perfpred.RunSampledDSE(ctx, full, *frac, kinds, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	finished := time.Now()

	if ares != nil {
		fmt.Printf("active: %s acquisition, %d initial + %d rounds\n",
			ares.Strategy, ares.InitialSize, len(ares.Rounds))
		atw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(atw, "round\tlabeled\tacquired\tcommittee error (true MAPE)")
		for _, r := range ares.Rounds {
			var parts []string
			for _, c := range r.Committee {
				parts = append(parts, fmt.Sprintf("%s %.2f%%", c.Name, c.MAPE))
			}
			fmt.Fprintf(atw, "%d\t%d\t+%d\t%s\n",
				r.Round, r.LabeledBefore, r.Acquired, strings.Join(parts, "  "))
		}
		if err := atw.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\testimated(mean)\testimated(max)\ttrue error")
	for _, rep := range res.Reports {
		fmt.Fprintf(tw, "%v\t%.2f%%\t%.2f%%\t%.2f%%\n",
			rep.Kind, rep.Estimate.Mean, rep.Estimate.Max, rep.TrueMAPE)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected (by estimate): %v — true error %.2f%% using %d simulated points of %d\n",
		res.Selected, res.SelectedTrueMAPE, res.SampleSize, full.Len())

	if *report != "" {
		meta := perfpred.ReportMeta{
			Command:    "dse",
			Target:     *bench,
			Seed:       *seed,
			Workers:    *workers,
			EpochScale: *epochs,
			SpaceSize:  full.Len(),
			WallClock: perfpred.WallClock{
				TotalSeconds:    finished.Sub(start).Seconds(),
				SimulateSeconds: simulated.Sub(start).Seconds(),
				ModelSeconds:    finished.Sub(simulated).Seconds(),
			},
		}
		var rep *perfpred.RunReport
		if ares != nil {
			rep = perfpred.BuildActiveDSEReport(ares, meta, rec)
		} else {
			rep = perfpred.BuildDSEReport(res, meta, rec)
		}
		if err := rep.WriteFile(*report); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report: %s\n", *report)
	}
}

func parseModels(s string) ([]perfpred.ModelKind, error) {
	if s == "all" {
		return perfpred.AllModels(), nil
	}
	var kinds []perfpred.ModelKind
	for _, part := range strings.Split(s, ",") {
		k, err := perfpred.ParseModelKind(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}
