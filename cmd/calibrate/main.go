// Command calibrate reports how the simulated design space responds to
// each benchmark workload: the cycle range and normalized variance across
// a systematic sample of the Table 1 space (the paper's §4.1 statistics),
// plus per-parameter sensitivities and the component breakdown of the
// fastest and slowest sampled configurations. It is the tool used to tune
// the workload profiles against the paper's published numbers.
//
// Usage:
//
//	calibrate [-bench name] [-n instrs] [-stride k] [-seed s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"perfpred/internal/cpu"
	"perfpred/internal/engine"
	"perfpred/internal/space"
	"perfpred/internal/stat"
	"perfpred/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	benchName := flag.String("bench", "", "benchmark to calibrate (default: the five figured ones)")
	n := flag.Int("n", 0, "trace length in instructions (default: profile SimLen)")
	stride := flag.Int("stride", 11, "systematic sampling stride over the 4608-point space")
	seed := flag.Int64("seed", 1, "trace generation seed")
	flag.Parse()

	var profs []*trace.Profile
	if *benchName != "" {
		p, err := trace.ProfileByName(*benchName)
		if err != nil {
			log.Fatal(err)
		}
		profs = []*trace.Profile{p}
	} else {
		profs = trace.FiguredProfiles()
	}

	all := space.Enumerate()
	var cfgs []space.MicroConfig
	for i := 0; i < len(all); i += *stride {
		cfgs = append(cfgs, all[i])
	}
	fmt.Printf("sampling %d of %d configurations\n\n", len(cfgs), len(all))

	paperTargets := map[string][2]float64{
		"applu": {1.62, 0.16}, "equake": {1.73, 0.19}, "gcc": {5.27, 0.33},
		"mesa": {2.22, 0.19}, "mcf": {6.38, 0.71},
	}

	for _, p := range profs {
		length := *n
		if length == 0 {
			length = p.SimLen
		}
		tr, err := trace.Generate(p, length, *seed)
		if err != nil {
			log.Fatal(err)
		}
		eval, err := cpu.NewEvaluator(tr)
		if err != nil {
			log.Fatal(err)
		}
		cycles, err := space.Sweep(context.Background(), eval, cfgs, engine.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rng, err := stat.Range(cycles)
		if err != nil {
			log.Fatal(err)
		}
		nv := stat.NormalizedVariance(cycles)
		target := paperTargets[p.Name]
		fmt.Printf("=== %s (n=%d)  range %.2f (paper %.2f)  nvar %.3f (paper %.2f)\n",
			p.Name, length, rng, target[0], nv, target[1])

		// Fastest and slowest sampled configurations with breakdowns.
		fastest, slowest := 0, 0
		for i, c := range cycles {
			if c < cycles[fastest] {
				fastest = i
			}
			if c > cycles[slowest] {
				slowest = i
			}
		}
		for _, pick := range []struct {
			label string
			idx   int
		}{{"fastest", fastest}, {"slowest", slowest}} {
			res, err := eval.Simulate(cfgs[pick.idx].CPUConfig())
			if err != nil {
				log.Fatal(err)
			}
			c := cfgs[pick.idx]
			fmt.Printf("  %s: %.0f cyc (CPI %.2f) l1d=%d/%d l1i=%d/%d l2=%d l3=%d bp=%s w=%d ruu=%d iw=%v\n",
				pick.label, res.Cycles, res.Cycles/float64(res.Instructions),
				c.L1DSizeKB, c.L1DLineB, c.L1ISizeKB, c.L1ILineB, c.L2SizeKB, c.L3SizeMB,
				c.BPred, c.Width, c.RUU, c.IssueWrong)
			fmt.Printf("    base=%.0f branch=%.0f fetch=%.0f mem=%.0f tlb=%.0f bmiss=%d/%d\n",
				res.BaseCycles, res.BranchCycles, res.FetchCycles, res.MemCycles, res.TLBCycles,
				res.BranchMisses, res.Branches)
		}

		// Per-parameter sensitivity: mean cycles by value of each dimension.
		dims := []struct {
			name string
			key  func(space.MicroConfig) string
		}{
			{"l1d_size", func(c space.MicroConfig) string { return fmt.Sprintf("%dKB", c.L1DSizeKB) }},
			{"l1d_line", func(c space.MicroConfig) string { return fmt.Sprintf("%dB", c.L1DLineB) }},
			{"l1i_size", func(c space.MicroConfig) string { return fmt.Sprintf("%dKB", c.L1ISizeKB) }},
			{"l1i_line", func(c space.MicroConfig) string { return fmt.Sprintf("%dB", c.L1ILineB) }},
			{"l2", func(c space.MicroConfig) string { return fmt.Sprintf("%dKB", c.L2SizeKB) }},
			{"l3", func(c space.MicroConfig) string { return fmt.Sprintf("%dMB", c.L3SizeMB) }},
			{"bpred", func(c space.MicroConfig) string { return c.BPred.String() }},
			{"width", func(c space.MicroConfig) string { return fmt.Sprintf("%d", c.Width) }},
			{"window", func(c space.MicroConfig) string { return fmt.Sprintf("%d", c.RUU) }},
			{"issue_wrong", func(c space.MicroConfig) string { return fmt.Sprintf("%v", c.IssueWrong) }},
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, d := range dims {
			groups := map[string][]float64{}
			for i, c := range cfgs {
				k := d.key(c)
				groups[k] = append(groups[k], cycles[i])
			}
			keys := make([]string, 0, len(groups))
			for k := range groups {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			line := "  " + d.name + ":\t"
			var lo, hi float64
			for i, k := range keys {
				m := stat.Mean(groups[k])
				if i == 0 || m < lo {
					lo = m
				}
				if i == 0 || m > hi {
					hi = m
				}
				line += fmt.Sprintf("%s=%.0f\t", k, m)
			}
			line += fmt.Sprintf("(spread %.1f%%)", 100*(hi-lo)/lo)
			fmt.Fprintln(w, line)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
