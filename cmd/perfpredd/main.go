// Command perfpredd serves trained surrogate predictors over HTTP.
//
// It loads every *.json artifact in -models into a versioned in-memory
// registry and serves:
//
//	POST /v1/predict   score one row or a batch (micro-batched)
//	GET  /v1/models    list loaded models (kind, family tag, schema) and the catalog generation
//	GET  /v1/report    live ServeReport snapshot
//	POST /admin/reload atomically reload the model directory
//	GET  /metrics      obs metrics snapshot (plus /debug/vars, /debug/pprof)
//	GET  /healthz      liveness probe
//
// SIGHUP reloads the model directory in place (a failed reload keeps
// the previous catalog serving). SIGTERM/SIGINT drain gracefully: the
// listener stops accepting, in-flight and queued requests are answered,
// then a final ServeReport is written to -report if set.
//
//	predict -train -family "Pentium D" -model LR-E -out models/pd-lre.json
//	perfpredd -models models -addr localhost:8091
//	curl -s localhost:8091/v1/predict -d '{"model":"pd-lre","row":[...]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perfpred/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfpredd: ")
	addr := flag.String("addr", "localhost:8091", "listen address (port 0 picks a free port; see -addr-file)")
	models := flag.String("models", "models", "directory of *.json predictor artifacts")
	queue := flag.Int("queue", 256, "admission queue depth; a full queue sheds with 429")
	maxBatch := flag.Int("max-batch", 64, "max rows coalesced into one kernel batch")
	batchWait := flag.Duration("batch-wait", 500*time.Microsecond, "max time a gathered batch waits for more rows")
	workers := flag.Int("workers", 0, "batch worker goroutines (0 = GOMAXPROCS)")
	timeout := flag.Duration("request-timeout", 5*time.Second, "per-request prediction deadline")
	cacheEntries := flag.Int("cache-entries", 0, "sharded prediction-cache capacity in entries (0 disables the cache)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max time to drain in-flight HTTP requests on shutdown")
	report := flag.String("report", "", "write a final ServeReport JSON here on shutdown")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	flag.Parse()

	cfg := serve.Config{
		ModelsDir: *models,
		Batcher: serve.BatcherConfig{
			QueueDepth: *queue,
			MaxBatch:   *maxBatch,
			MaxWait:    *batchWait,
			Workers:    *workers,
		},
		RequestTimeout: *timeout,
		CacheEntries:   *cacheEntries,
	}
	if err := run(cfg, *addr, *addrFile, *report, *drainTimeout); err != nil {
		log.Fatal(err)
	}
}

func run(cfg serve.Config, addr, addrFile, report string, drainTimeout time.Duration) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return err
	}
	bound := ln.Addr().String()
	srv.SetAddr(bound)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			srv.Close()
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}
	log.Printf("serving models %v from %s on http://%s", srv.Registry().Names(), cfg.ModelsDir, bound)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)

	for {
		select {
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if gen, err := srv.Reload(); err != nil {
					log.Printf("reload failed, previous catalog still serving: %v", err)
				} else {
					log.Printf("reloaded generation %d: models %v", gen, srv.Registry().Names())
				}
				continue
			}
			log.Printf("%v: draining", sig)
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			err := hs.Shutdown(ctx)
			cancel()
			// HTTP handlers have returned (or the drain timed out); now
			// drain the batcher so every admitted request is answered.
			srv.Close()
			if report != "" {
				if werr := srv.Report().WriteFile(report); werr != nil {
					log.Printf("write report: %v", werr)
					if err == nil {
						err = werr
					}
				} else {
					log.Printf("wrote serve report to %s", report)
				}
			}
			if err != nil {
				return fmt.Errorf("shutdown: %w", err)
			}
			log.Print("drained cleanly")
			return nil
		case err := <-serveErr:
			srv.Close()
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		}
	}
}
