// Command perfpredload is the chaos/soak driver for the serving stack:
// it trains a small fixture zoo, boots an in-process daemon with the
// fault-injection layer armed, replays a deterministic seed-derived
// request schedule against it, and verifies the serving invariants
// (one terminal response per request, bit-exact 200s, exact client
// error codes, monotone registry generations, consistent counters).
//
// With -gateway-replicas N (N >= 2) the run instead drives the
// replicated topology: N in-process daemons behind a cache-affine
// gateway, with per-replica cache/generation invariants and rendezvous
// affinity checks. -replica-kill additionally crashes one replica
// mid-schedule and restarts it, asserting the gateway ejects, retries
// around, and readmits it without losing a request.
//
// Usage:
//
//	perfpredload -seed 7 -duration 30s -report chaos-report.json
//	perfpredload -seed 7 -duration 5m -gateway-replicas 3 -replica-kill -cache-entries 2048
//
// The process exits 1 if any invariant is violated; the printed seed
// reproduces the run exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"perfpred/internal/loadtest"
)

func main() {
	var (
		seed     = flag.Int64("seed", 7, "seed deriving the schedule, fixture models and fault decisions")
		duration = flag.Duration("duration", 30*time.Second, "schedule horizon")
		requests = flag.Int("requests", 0, "predict requests to schedule (0 = scale with duration)")
		workers  = flag.Int("workers", 0, "max concurrent in-flight client requests (0 = default)")
		timeout  = flag.Duration("timeout", 0, "daemon per-request deadline (0 = default)")
		faults   = flag.Bool("faults", true, "arm the chaos fault plans")
		cache    = flag.Int("cache-entries", 0, "arm the daemon's prediction cache with this capacity (0 = off); adds the generation-boundary epilogue")
		replicas = flag.Int("gateway-replicas", 0, "drive this many daemons behind a cache-affine gateway instead of one bare daemon (0 = off, otherwise >= 2)")
		kill     = flag.Bool("replica-kill", false, "crash one gateway replica mid-schedule and restart it (requires -gateway-replicas)")
		report   = flag.String("report", "", "write the invariant report JSON to this path")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	cfg := loadtest.Config{
		Seed:            *seed,
		Duration:        *duration,
		Requests:        *requests,
		Workers:         *workers,
		RequestTimeout:  *timeout,
		Faults:          *faults,
		CacheEntries:    *cache,
		GatewayReplicas: *replicas,
		ReplicaKill:     *kill,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "perfpredload: "+format+"\n", args...)
		}
	}

	rep, err := loadtest.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfpredload: seed %d: %v\n", *seed, err)
		os.Exit(1)
	}
	if *report != "" {
		if werr := rep.WriteFile(*report); werr != nil {
			fmt.Fprintf(os.Stderr, "perfpredload: writing report: %v\n", werr)
			os.Exit(1)
		}
	}

	if rep.Gateway != nil {
		fmt.Printf("seed %d  schedule %#x  events %d  statuses %v  timeouts %d  reloads %d/%d ok  bit-compared %d\n",
			rep.Seed, rep.ScheduleHash, rep.Events, rep.StatusCounts, rep.ClientTimeouts,
			rep.Reloads.OK, rep.Reloads.Attempted, rep.BitCompared)
		fmt.Printf("gateway %d replicas  kills %d  restarts %d  hedges %d (%d won)  retries %d  ejects %d  readmits %d  gw-faults %d  affinity %d keys spread<=%d\n",
			rep.GatewayReplicas, rep.ReplicaKills, rep.ReplicaRestarts,
			rep.Gateway.Hedges, rep.Gateway.HedgeWins, rep.Gateway.Retries,
			rep.Gateway.Ejects, rep.Gateway.Readmits, rep.Gateway.FaultsInjected,
			rep.AffinityKeys, rep.AffinityMaxSpread)
		for _, sr := range rep.ServeReplicas {
			fmt.Printf("  replica %s  requests %d  predictions %d  shed %d  faults %d  cache hits %d / lookups %d\n",
				sr.Addr, sr.Requests, sr.Predictions, sr.Shed, sr.FaultsInjected, sr.Cache.Hits, sr.Cache.Lookups)
		}
	} else {
		fmt.Printf("seed %d  schedule %#x  events %d  statuses %v  timeouts %d  shed %d  reloads %d/%d ok  faults %d  bit-compared %d\n",
			rep.Seed, rep.ScheduleHash, rep.Events, rep.StatusCounts, rep.ClientTimeouts,
			rep.Serve.Shed, rep.Reloads.OK, rep.Reloads.Attempted, rep.Serve.FaultsInjected, rep.BitCompared)
		if rep.CacheEntries > 0 {
			cs := rep.Serve.Cache
			fmt.Printf("cache %d entries  lookups %d  hits %d  misses %d  coalesced %d  evictions %d  invalidations %d  epilogue %+v\n",
				rep.CacheEntries, cs.Lookups, cs.Hits, cs.Misses, cs.Coalesced, cs.Evictions, cs.Invalidations, rep.Epilogue)
		}
	}
	if !rep.OK() {
		fmt.Printf("FAIL: %d invariant violations (reproduce with -seed %d):\n", len(rep.Violations), rep.Seed)
		for _, v := range rep.Violations {
			fmt.Println("  - " + v)
		}
		os.Exit(1)
	}
	fmt.Println("PASS: all serving invariants held")
}
