// Command experiments regenerates the tables and figures of the paper's
// evaluation section from scratch: synthetic workload + full design-space
// simulation for the sampled-DSE studies (Figures 2–6, Table 3), synthetic
// SPEC announcements + chronological prediction for Figures 7–8 and
// Table 2, the §4.1 calibration statistics, and the §4.4 importance
// analysis.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp figures2-6 -bench mcf -fracs 0.01,0.03,0.05
//	experiments -exp table2 -seed 7
//
// Cost knobs: -tracelen and -stride shrink the simulated substrate;
// -epochs scales neural training.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"perfpred/internal/core"
	"perfpred/internal/experiments"
	"perfpred/internal/obs"
	"perfpred/internal/progress"
	"perfpred/internal/space"
	"perfpred/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	exp := flag.String("exp", "all", "experiment: table1|figures2-6|figure7|figure8|table2|table3|calibration|importance|perapp|rolling|crossfamily|ablations|learning|all")
	bench := flag.String("bench", "", "restrict figures2-6 to one benchmark")
	fracsArg := flag.String("fracs", "0.01,0.02,0.03,0.04,0.05", "sampling fractions for the sampled-DSE studies")
	seed := flag.Int64("seed", 1, "master seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	epochs := flag.Float64("epochs", 1.0, "neural epoch scale")
	traceLen := flag.Int("tracelen", 0, "trace length override (0 = per-benchmark recommendation)")
	stride := flag.Int("stride", 0, "design-space stride (0 = full 4608 points)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	verbose := flag.Bool("v", false, "log per-task progress (durations, folds, epochs)")
	report := flag.String("report", "", "write a machine-readable JSON RunReport (execution statistics) to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics over HTTP on this address (expvar /debug/vars, pprof /debug/pprof, JSON /metrics), e.g. localhost:6060")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rec := obs.NewRecorder()
	hook := rec.Hook()
	if *verbose {
		hook = progress.New(os.Stderr, false, rec).Hook()
	}
	if *metricsAddr != "" {
		addr, _, err := obs.StartMetricsServer(*metricsAddr, rec.Registry())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/debug/vars\n", addr)
	}
	start := time.Now()

	cfg := experiments.Config{
		Seed:        *seed,
		Workers:     *workers,
		EpochScale:  *epochs,
		TraceLen:    *traceLen,
		SpaceStride: *stride,
		Hook:        hook,
	}
	fracs, err := parseFracs(*fracsArg)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("table1", func() error { return printTable1() })
	run("calibration", func() error { return runCalibration(ctx, cfg) })
	run("figures2-6", func() error { _, err := runFigures(ctx, cfg, fracs, *bench, true); return err })
	run("table3", func() error {
		studies, err := runFigures(ctx, cfg, fracs, *bench, false)
		if err != nil {
			return err
		}
		t3, err := experiments.ComputeTable3(studies)
		if err != nil {
			return err
		}
		if err := t3.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println("paper Table 3 reference:")
		paper := experiments.PaperTable3()
		for _, k := range []string{"LR-B", "NN-E", "NN-S", "Select"} {
			fmt.Printf("  %-6s %v\n", k, paper[k])
		}
		return nil
	})
	run("figure7", func() error {
		return runChrono(ctx, cfg, []string{"Xeon", "Pentium 4", "Pentium D"})
	})
	run("figure8", func() error {
		return runChrono(ctx, cfg, []string{"Opteron", "Opteron 2", "Opteron 4", "Opteron 8"})
	})
	run("table2", func() error {
		t2, err := experiments.RunTable2(ctx, core.FigureModels(), cfg)
		if err != nil {
			return err
		}
		return t2.WriteText(os.Stdout)
	})
	run("perapp", func() error {
		s, err := experiments.RunPerAppChrono(ctx, "Pentium D", core.FigureModels(), cfg)
		if err != nil {
			return err
		}
		return s.WriteText(os.Stdout)
	})
	run("rolling", func() error {
		for _, fam := range []string{"Opteron 2", "Xeon"} {
			s, err := experiments.RunRollingChrono(ctx, fam, core.FigureModels(), cfg)
			if err != nil {
				return err
			}
			if err := s.WriteText(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	})
	run("crossfamily", func() error {
		r, err := experiments.RunCrossFamily(ctx, "Xeon", "Opteron", core.LRE, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("cross-family check (why the paper analyzes families separately):\n")
		fmt.Printf("  LR-E trained on %s 2005: %.2f%% error within family (2006), %.2f%% on %s systems\n",
			r.TrainFamily, r.WithinTrue, r.CrossTrue, r.TestFamily)
		return nil
	})
	run("ablations", func() error {
		sel, err := experiments.RunSelectAblation(ctx, "mcf", 0.02, core.SampledModels(), cfg)
		if err != nil {
			return err
		}
		fmt.Printf("Select criterion ablation (mcf @ 2%%): max-fold pick %v → %.2f%%, mean-fold pick %v → %.2f%%, oracle %.2f%%\n",
			sel.MaxPick, sel.MaxTrue, sel.MeanPick, sel.MeanTrue, sel.BestTrue)
		smp, err := experiments.RunSamplingAblation(ctx, "gcc", 0.02, core.NNE, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("Sampling ablation (gcc @ 2%%, NN-E): random %.2f%%, systematic %.2f%%\n",
			smp.RandomTrue, smp.SystematicTrue)
		return nil
	})
	run("learning", func() error {
		lc, err := experiments.RunLearningCurve(ctx, "mcf", core.NNE,
			[]float64{0.005, 0.01, 0.02, 0.04, 0.08}, cfg)
		if err != nil {
			return err
		}
		return lc.WriteText(os.Stdout)
	})
	run("importance", func() error {
		for _, fam := range []string{"Opteron", "Pentium D"} {
			rep, err := experiments.RunImportance(ctx, fam, cfg)
			if err != nil {
				return err
			}
			if err := rep.WriteText(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	})

	if *report != "" {
		// Experiment suites span many studies, so the report carries the
		// run identification and execution statistics (the per-study model
		// errors are printed in full by each study's text writer).
		exec := rec.Execution()
		metrics := rec.Metrics()
		rep := &obs.RunReport{
			Version:    obs.ReportVersion,
			Command:    "experiments",
			Target:     *exp,
			Seed:       *seed,
			Workers:    *workers,
			EpochScale: *epochs,
			WallClock:  obs.WallClock{TotalSeconds: time.Since(start).Seconds()},
			Execution:  &exec,
			Metrics:    &metrics,
		}
		if err := rep.WriteFile(*report); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report: %s\n", *report)
	}
}

func parseFracs(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad fraction %q: %w", part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func printTable1() error {
	fmt.Printf("Table 1: microprocessor design space — %d configurations per benchmark\n", space.SpaceSize)
	fmt.Println("parameters: L1D {16,32,64}KB × {32,64}B lines, L1I {16,32,64}KB × {32,64}B lines,")
	fmt.Println("  L2 {256KB/4-way, 1MB/8-way}, L3 {none, 8MB/256B/8-way},")
	fmt.Println("  branch predictor {perfect, bimodal, 2level, combination},")
	fmt.Println("  width+FUs {4 / 4-2-2-4-2, 8 / 8-4-4-8-4}, wrong-path issue {no, yes},")
	fmt.Println("  window {RUU 128/LSQ 64/ITLB 256KB/DTLB 512KB, RUU 256/LSQ 128/ITLB 1MB/DTLB 2MB}")
	fmt.Println("benchmarks:", strings.Join(benchNames(), ", "))
	return nil
}

func benchNames() []string {
	var out []string
	for _, p := range trace.Profiles() {
		out = append(out, p.Name)
	}
	return out
}

func runCalibration(ctx context.Context, cfg experiments.Config) error {
	micro, err := experiments.RunMicroCalibration(ctx, cfg)
	if err != nil {
		return err
	}
	if err := experiments.WriteCalibration(os.Stdout, "Simulation statistics (§4.1)", micro); err != nil {
		return err
	}
	specRows, err := experiments.RunSpecCalibration(ctx, cfg)
	if err != nil {
		return err
	}
	return experiments.WriteCalibration(os.Stdout, "SPEC family statistics (§4.1)", specRows)
}

func runFigures(ctx context.Context, cfg experiments.Config, fracs []float64, bench string, print bool) ([]*experiments.SampledStudy, error) {
	benches := []string{"applu", "equake", "gcc", "mesa", "mcf"}
	if bench != "" {
		benches = []string{bench}
	}
	var studies []*experiments.SampledStudy
	for i, b := range benches {
		s, err := experiments.RunSampledStudy(ctx, b, fracs, core.SampledModels(), cfg)
		if err != nil {
			return nil, err
		}
		studies = append(studies, s)
		if print {
			fmt.Printf("Figure %d:\n", 2+i)
			if err := s.WriteText(os.Stdout); err != nil {
				return nil, err
			}
			fmt.Println()
		}
	}
	return studies, nil
}

func runChrono(ctx context.Context, cfg experiments.Config, families []string) error {
	for _, fam := range families {
		s, err := experiments.RunChronoStudy(ctx, fam, core.FigureModels(), cfg)
		if err != nil {
			return err
		}
		if err := s.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
